// gmorph_cli: run a GMorph fusion from a configuration file — the workflow
// the paper describes in §3 (well-trained DNNs + a config with the metric,
// accuracy threshold, fine-tuning hyper-parameters and search budget).
//
// Usage:
//   gmorph_cli [--trace <out.json>] [--metrics <out.json>]
//              [--flight-recorder=<out.json>] <config-file>
//   gmorph_cli --resume <checkpoint> <config-file>
//   gmorph_cli --dump-plan <config-file>
//   gmorph_cli --profile <config-file>
//   gmorph_cli --autotune <config-file>
//   gmorph_cli --quantize <config-file>
//   gmorph_cli --export-plan <config-file> <out.plan>
//   gmorph_cli --serve <config-file>
//   gmorph_cli --verify [--list-rules] [--format=text|json|sarif]
//              [--Werror=<rule|prefix>] [--Wno=<rule|prefix>]
//              [--baseline=<file>] <file>
//   gmorph_cli --print-default-config
//
// --trace writes a Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing) covering the whole run; --metrics writes the metrics
// registry snapshot at exit. Both combine with any mode and are also
// reachable via the GMORPH_TRACE / GMORPH_METRICS environment variables.
// --flight-recorder starts the serving flight recorder (a fixed-size ring of
// request lifecycle events) and dumps it as JSON at exit; it combines with
// any mode but only --serve (and code using the serving layer) records
// events.
//
// --resume continues an interrupted search from a checkpoint written by a
// previous run (config keys `checkpoint_path` / `checkpoint_every`). The
// config must describe the same search (seed, thresholds, policy, ...); the
// continuation reproduces the uninterrupted run's results exactly.
//
// --dump-plan skips search and teacher training: it materializes the
// benchmark's multi-task graph (or a fused graph saved by a previous run via
// `input_graph = <file>`), lowers it through the FusedEngine execution
// planner, and prints the plan (steps, buffer assignment, groups) plus a
// per-step latency profile at the configured batch size.
//
// --profile runs the perf-counter roofline profiler on the configured
// benchmark's execution plan (or `input_graph`): the machine's compute and
// bandwidth ceilings are probed once and cached in the fingerprinted
// `gmorph-machine v1` artifact (config key `machine_db`, else
// $GMORPH_MACHINE_DB, else <cache dir>/gmorph.machine), the plan is run
// `profile_runs` times at the configured batch with per-step hardware
// counters (cycles, instructions, LLC loads/misses, branch misses) enabled,
// and each step is attributed against the roofline: achieved GFLOP/s, GB/s,
// arithmetic intensity, IPC, LLC miss rate, branch MPKI, and a
// compute/memory-bound label with percent-of-roof. Where perf_event_open is
// denied (containers, CI) the report degrades to "counters unavailable" and
// still carries the full time/flops/roofline half. `profile_json = <path>`
// additionally writes the report as JSON.
//
// --autotune benchmarks every applicable kernel solver on each problem shape
// the configured benchmark's execution plan runs (conv im2col GEMMs, linear
// GEMMs, max-pools, at batch 1 and the configured batch_size) and records the
// winners in the tuning DB. The DB location is the config key `tune_db`, else
// $GMORPH_TUNE_DB, else <cache dir>/gmorph.tunedb next to the eval cache.
// Already-tuned shapes are reused, so re-running against a warm DB performs
// zero benchmarks. Any later run with GMORPH_TUNE_DB pointing at the file
// (or the default location) resolves kernels through the tuned winners.
//
// --quantize runs int8 post-training quantization on the configured
// benchmark's execution plan (or a fused graph via `input_graph`): the f32
// plan is scored and timed on the synthetic test split, calibrated on
// `quant_calib_batches` x `quant_calib_batch_size` representative inputs, the
// "gmorph-quant v1" recipe is written to `quant_recipe`, applied, and the
// int8 plan re-scored so the report isolates exactly the latency gain and
// accuracy drop int8 adds. During a search, `quantize_search = true`
// additionally scores every elite candidate's int8 plan (mixed-precision
// winners).
//
// --export-plan lowers the configured benchmark (or `input_graph`) through
// the FusedEngine planner and writes the execution plan as a `gmorph-plan v1`
// text file — the artifact `--verify` lints and the CI plan-lint job sweeps.
// `export_quantized = true` calibrates int8 first so the exported plan
// carries the mixed-precision step dtypes.
//
// --serve runs the real threaded multi-model server (src/serving/server.h)
// on the configured benchmark graph (or `input_graph`): it builds
// `serve_replicas` engine replicas, calibrates per-batch-size service times,
// replays an open-loop Poisson arrival stream of `serve_requests` requests at
// `serve_qps` against the wall clock, and reports throughput / latency
// percentiles / batch and shed counts. `serve_sla_ms` > 0 turns on SLA-aware
// admission; `serve_swap = true` hot-swaps a freshly built engine into slot 0
// mid-run to prove no in-flight request is dropped. Exits nonzero if any
// admitted request was lost. Combine with --metrics for the serving.*
// histograms and --flight-recorder=<path> for the per-request event record
// (dumped at Drain()/Stop(); on a lost request the dump is what pinpoints
// where its lifecycle stopped).
//
// --verify lints a file through the unified analysis driver
// (src/analysis/driver.h) and exits nonzero on any error diagnostic. The file
// kind is sniffed from its head (binary graph magic, or the shared
// "gmorph-<kind> vN" header line); unknown files fall back to being parsed as
// a search config naming a benchmark, whose graph is built, verified, lowered
// and plan-checked. Plans additionally run the dtype-propagation analysis
// (plan.dtype.*) and the peak-memory certifier (plan.mem.*).
//   --list-rules          print the full rule catalog and exit;
//   --format=F            text (default) | json | sarif (SARIF 2.1.0);
//   --Werror=<rule|pfx>   promote matching warnings to errors;
//   --Wno=<rule|pfx>      drop matching warnings/notes (never errors);
//   --baseline=<file>     suppress known findings ("rule.id node path" lines).
// Exit codes: 0 clean after policy, 1 errors survived, 2 unreadable input.
//
// The config selects one of the built-in benchmarks (B1-B7), pre-trains its
// task-specific teachers on the synthetic datasets, runs the search, and
// writes the fused model (binary graph) and an optional Graphviz rendering.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/driver.h"
#include "src/analysis/plan_io.h"
#include "src/analysis/rules.h"
#include "src/common/check.h"
#include "src/common/config.h"
#include "src/common/logging.h"
#include "src/common/parallel_for.h"
#include "src/core/dot_export.h"
#include "src/core/eval_cache.h"
#include "src/core/gmorph.h"
#include "src/core/graph_io.h"
#include "src/core/model_parser.h"
#include "src/core/search_checkpoint.h"
#include "src/data/benchmarks.h"
#include "src/data/teacher.h"
#include "src/kernels/autotune.h"
#include "src/kernels/machine.h"
#include "src/kernels/tune_db.h"
#include "src/obs/metrics.h"
#include "src/obs/perf_counters.h"
#include "src/obs/timing.h"
#include "src/obs/trace.h"
#include "src/quant/recipe.h"
#include "src/runtime/fused_engine.h"
#include "src/runtime/quant_scoring.h"
#include "src/runtime/roofline.h"
#include "src/serving/flight_recorder.h"
#include "src/serving/server.h"

namespace {

// Set by the peeled --flight-recorder=<path> flag; ServeMode threads it into
// ServerOptions so the server dumps the ring at Drain()/Stop() too.
std::string g_flight_recorder_path;

constexpr const char* kDefaultConfig = R"(# GMorph search configuration (paper §3)
benchmark = 1                 # built-in benchmark B1..B7 (Table 2)
metric = latency              # latency | flops
accuracy_drop_threshold = 0.01
iterations = 20               # graph mutation optimization rounds
max_mutations_per_pass = 2
policy = sa                   # sa | random
predictive_termination = true
rule_based_filtering = true

# Fine-tuning (accuracy estimator)
finetune_epochs = 6
eval_interval = 2             # the paper's delta
batch_size = 32
learning_rate = 0.001

# Data / model scale
train_size = 128
test_size = 64
cnn_width = 8
noise_stddev = 1.6
teacher_epochs = 6

seed = 42
verbose = true
output_graph = fused_model.gmorph
output_dot = fused_model.dot

# Parallel search: candidates sampled per round / fine-tuning workers
parallel_candidates = 1
search_threads = 1

# Evaluation cache: reuse verify/fine-tune outcomes across runs.
# cache_dir empty resolves $GMORPH_CACHE_DIR, then gmorph_bench_cache/.
use_eval_cache = false
cache_dir =

# Kernel autotuning (`gmorph_cli --autotune`): solver winners are written
# here and picked up by any run via GMORPH_TUNE_DB. Empty resolves
# $GMORPH_TUNE_DB, then <cache dir>/gmorph.tunedb.
tune_db =

# Roofline profiling (`gmorph_cli --profile`): runs per profile, machine
# ceiling artifact location (empty resolves $GMORPH_MACHINE_DB, then
# <cache dir>/gmorph.machine), optional JSON report path.
profile_runs = 10
machine_db =
profile_json =

# Checkpoint/resume: write a resumable checkpoint every N iterations (and at
# search end); continue with `gmorph_cli --resume <checkpoint> <config>`.
checkpoint_path =
checkpoint_every = 0

# Int8 post-training quantization (`gmorph_cli --quantize`, and per-elite
# scoring during search when quantize_search is on). The recipe is written to
# quant_recipe and lintable via `gmorph_cli --verify`.
quantize_search = false
quant_recipe = gmorph.quantrecipe
quant_calib_batches = 2
quant_calib_batch_size = 16
quant_drop_budget = 0.01

# Threaded serving (`gmorph_cli --serve`): open-loop Poisson load against the
# real multi-replica server. serve_engine is eager | fused; serve_sla_ms > 0
# sheds provably-late requests at admission; serve_swap hot-swaps slot 0
# mid-run to exercise the zero-drop swap path.
serve_engine = fused
serve_replicas = 2
serve_max_batch = 8
serve_qps = 500
serve_requests = 200
serve_sla_ms = 0
serve_swap = true
)";

// Builds the configured benchmark's multi-task graph, or loads the fused
// graph named by `input_graph`. Fills a one-line description for banners.
bool BuildConfiguredGraph(const gmorph::Config& config, gmorph::AbsGraph* graph,
                          std::string* label) {
  using namespace gmorph;
  const int bench_index = static_cast<int>(config.GetInt("benchmark", 1));
  const std::string graph_path = config.GetString("input_graph", "");
  if (!graph_path.empty()) {
    if (!LoadGraph(graph_path, *graph)) {
      std::fprintf(stderr, "failed to load %s\n", graph_path.c_str());
      return false;
    }
    *label = "fused graph " + graph_path + " (benchmark B" + std::to_string(bench_index) + ")";
    return true;
  }
  BenchmarkScale scale;
  scale.train_size = 1;  // datasets are unused here; keep materialization cheap
  scale.test_size = 1;
  scale.cnn_width = config.GetInt("cnn_width", 8);
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));
  BenchmarkDef def = MakeBenchmark(bench_index, scale, seed);
  std::vector<ModelSpec> specs;
  for (const auto& task : def.tasks) {
    specs.push_back(task.model);
  }
  *graph = ParseModelSpecs(specs);
  *label = "unfused benchmark B" + std::to_string(bench_index) + " (" +
           std::to_string(def.tasks.size()) + " tasks)";
  return true;
}

// Lowers the configured benchmark (or a saved fused graph) into an execution
// plan and prints it with a per-step profile. No search, no teacher training.
int DumpPlanMode(const gmorph::Config& config) {
  using namespace gmorph;
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));
  AbsGraph graph;
  std::string label;
  if (!BuildConfiguredGraph(config, &graph, &label)) {
    return 2;
  }
  std::printf("plan for %s\n", label.c_str());

  Rng rng(seed);
  MultiTaskModel model(graph, rng);
  FusedEngine engine(&model);
  std::printf("%s\n", engine.DumpPlan().c_str());

  const int64_t batch = config.GetInt("batch_size", 1);
  const int runs = static_cast<int>(config.GetInt("profile_runs", 10));
  const Shape input_shape = graph.node(graph.root()).output_shape.WithBatch(batch);
  const Tensor input = Tensor::Zeros(input_shape);
  engine.Run(input);  // warmup: binds buffers, grows scratch arenas
  engine.ResetProfile();
  for (int r = 0; r < runs; ++r) {
    engine.Run(input);
  }
  std::printf("per-step profile (batch %lld, %d runs):\n", static_cast<long long>(batch), runs);
  double total_ms = 0.0;
  for (const auto& step : engine.Profile()) {
    total_ms += step.total_ms;
    std::printf("  %-32s node%-3d calls=%-4lld %8.3f ms\n", step.label.c_str(), step.node,
                static_cast<long long>(step.calls), step.total_ms);
  }
  std::printf("  %-32s %8.3f ms total step time\n", "", total_ms);
  return 0;
}

// Runs the perf-counter roofline profiler on the configured plan: machine
// ceilings from the cached/probed artifact, per-step hardware counters, and
// compute/memory-bound attribution (see usage comment).
int ProfileMode(const gmorph::Config& config) {
  using namespace gmorph;
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));
  AbsGraph graph;
  std::string label;
  if (!BuildConfiguredGraph(config, &graph, &label)) {
    return 2;
  }
  Rng rng(seed);
  MultiTaskModel model(graph, rng);
  FusedEngine engine(&model);
  std::printf("profiling %s (%d plan steps)\n", label.c_str(), engine.num_steps());

  // The ceilings the steps are attributed against: cached when the artifact
  // was written by this build at this thread count, probed (and saved) else.
  bool probed = false;
  const std::string machine_path =
      kernels::ResolveMachinePath(config.GetString("machine_db", ""));
  const kernels::MachineCeilings ceilings =
      kernels::LoadOrProbeMachineCeilings(machine_path, &probed);
  std::printf("machine ceilings %s %s\n", probed ? "probed ->" : "cached from",
              machine_path.c_str());

  const int64_t batch = config.GetInt("batch_size", 1);
  const int runs = std::max(1, static_cast<int>(config.GetInt("profile_runs", 10)));
  const Shape input_shape = graph.node(graph.root()).output_shape.WithBatch(batch);
  const Tensor input = Tensor::Zeros(input_shape);
  engine.Run(input);  // warmup: binds buffers, grows scratch arenas
  obs::EnableStepCounters();
  engine.ResetProfile();
  for (int r = 0; r < runs; ++r) {
    engine.Run(input);
  }
  obs::DisableStepCounters();

  const RooflineReport report = BuildRooflineReport(engine.Profile(), ceilings, batch, runs);
  std::fputs(RooflineReportText(report).c_str(), stdout);

  const std::string json_path = config.GetString("profile_json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (out) {
      out << RooflineReportJson(report) << "\n";
    }
    if (!out) {
      std::fprintf(stderr, "profile: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("profile JSON written to %s\n", json_path.c_str());
  }
  return 0;
}

// Benchmarks the applicable solvers on every kernel shape the configured
// plan executes and records the winners in the tuning DB (see usage comment).
int AutotuneMode(const gmorph::Config& config) {
  using namespace gmorph;
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));
  AbsGraph graph;
  std::string label;
  if (!BuildConfiguredGraph(config, &graph, &label)) {
    return 2;
  }
  Rng rng(seed);
  MultiTaskModel model(graph, rng);
  FusedEngine engine(&model);

  // Tune both the per-sample descriptors (what plan annotation resolves) and
  // the configured batch (what Run() bindings resolve); convs are
  // batch-independent so the union stays small.
  const int64_t batch = config.GetInt("batch_size", 1);
  std::set<kernels::ProblemDesc> dedup;
  for (const kernels::ProblemDesc& d : engine.KernelProblems(1)) {
    dedup.insert(d);
  }
  if (batch != 1) {
    for (const kernels::ProblemDesc& d : engine.KernelProblems(batch)) {
      dedup.insert(d);
    }
  }
  const std::vector<kernels::ProblemDesc> descs(dedup.begin(), dedup.end());

  const std::string db_path = kernels::ResolveTuneDbPath(config.GetString("tune_db", ""));
  auto db = std::make_shared<kernels::TuneDb>();
  const kernels::TuneDb::LoadStats loaded = db->Load(db_path);
  std::printf("autotuning %s: %zu shapes, db %s (%d prior entries)\n", label.c_str(),
              descs.size(), db_path.c_str(), loaded.entries);

  kernels::AutotuneOptions opts;
  opts.warmup = static_cast<int>(config.GetInt("autotune_warmup", 1));
  opts.repeats = static_cast<int>(config.GetInt("autotune_repeats", 5));
  opts.force = config.GetBool("autotune_force", false);
  int tuned = 0;
  int reused = 0;
  for (const kernels::TuneResult& r : kernels::TuneProblems(descs, *db, opts)) {
    std::printf("  %-52s -> %-12s %8.2f GF/s%s\n", kernels::ProblemKey(r.desc).c_str(),
                r.winner.c_str(), r.winner_gflops, r.reused ? " (cached)" : "");
    ++(r.reused ? reused : tuned);
  }
  if (!db->Save(db_path)) {
    std::fprintf(stderr, "failed to write tuning DB %s\n", db_path.c_str());
    return 2;
  }
  // Later work in this process (and tests driving the CLI in-process) should
  // resolve through the freshly tuned winners immediately.
  kernels::SetGlobalTuneDb(db);
  std::printf("tuned %d shape(s), reused %d, %lld total entries -> %s\n", tuned, reused,
              static_cast<long long>(db->size()), db_path.c_str());
  return 0;
}

// Calibrates the configured benchmark's plan on representative inputs, writes
// the quantization recipe, applies it, and reports the f32 vs int8 latency
// and per-task test scores (see usage comment).
int QuantizeMode(const gmorph::Config& config) {
  using namespace gmorph;
  const int bench_index = static_cast<int>(config.GetInt("benchmark", 1));
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));
  BenchmarkScale scale;
  scale.train_size = config.GetInt("train_size", 128);
  scale.test_size = config.GetInt("test_size", 64);
  scale.cnn_width = config.GetInt("cnn_width", 8);
  scale.noise_stddev = static_cast<float>(config.GetDouble("noise_stddev", 1.6));
  BenchmarkDef def = MakeBenchmark(bench_index, scale, seed);

  // The plan to quantize: a fused graph saved by a previous search (with its
  // trained weights), or the unfused benchmark.
  AbsGraph graph;
  std::string label;
  if (!BuildConfiguredGraph(config, &graph, &label)) {
    return 2;
  }
  Rng rng(seed);
  MultiTaskModel model(graph, rng);
  FusedEngine engine(&model);
  std::printf("quantizing %s (%d plan steps)\n", label.c_str(), engine.num_steps());

  // f32 baseline through the same engine, so the reported drop isolates
  // exactly what int8 adds.
  const int64_t batch = config.GetInt("batch_size", 32);
  const std::vector<double> f32_scores = EngineEvaluateMultiTask(engine, def.test, batch);
  const Shape input_shape = graph.node(graph.root()).output_shape.WithBatch(batch);
  const Tensor input = Tensor::Zeros(input_shape);
  const double f32_ms = MedianTimedMs([&] { engine.Run(input); }, 1, 5);

  // Calibrate on slices of the representative (train) inputs.
  std::vector<Tensor> calib;
  const int calib_batches = static_cast<int>(config.GetInt("quant_calib_batches", 2));
  const int64_t calib_batch = config.GetInt("quant_calib_batch_size", 16);
  int64_t start = 0;
  for (int b = 0; b < calib_batches && start < def.train.size(); ++b) {
    const int64_t count = std::min<int64_t>(calib_batch, def.train.size() - start);
    calib.push_back(def.train.InputBatch(start, count));
    start += count;
  }
  const quant::QuantRecipe recipe = engine.Calibrate(calib);

  const std::string recipe_path = config.GetString("quant_recipe", "gmorph.quantrecipe");
  std::string error;
  if (!quant::SaveQuantRecipe(recipe, recipe_path, &error)) {
    std::fprintf(stderr, "failed to write recipe: %s\n", error.c_str());
    return 2;
  }
  const int applied = engine.Quantize(recipe);
  std::printf("calibrated %zu step(s) -> %s; %d step(s) now int8\n", recipe.steps.size(),
              recipe_path.c_str(), applied);
  if (applied == 0) {
    std::fprintf(stderr, "no step of the plan is quantizable\n");
    return 2;
  }

  const std::vector<double> int8_scores = EngineEvaluateMultiTask(engine, def.test, batch);
  const double int8_ms = MedianTimedMs([&] { engine.Run(input); }, 1, 5);
  std::printf("latency (batch %lld): f32 %.3f ms -> int8 %.3f ms (%.2fx)\n",
              static_cast<long long>(batch), f32_ms, int8_ms,
              int8_ms > 0.0 ? f32_ms / int8_ms : 0.0);
  for (size_t t = 0; t < f32_scores.size(); ++t) {
    const std::string name = t < def.tasks.size() ? def.tasks[t].name : "task" + std::to_string(t);
    std::printf("  %-13s f32 %.3f -> int8 %.3f (drop %+.4f)\n", name.c_str(), f32_scores[t],
                int8_scores[t], f32_scores[t] - int8_scores[t]);
  }
  return 0;
}

// Lints one file through the unified analysis driver (see usage comment).
// `args` is everything after --verify: flags plus one input path.
int VerifyMode(const std::vector<std::string>& args) {
  using namespace gmorph;
  AnalysisOptions options;
  AnalysisFormat format = AnalysisFormat::kText;
  std::string path;
  for (const std::string& arg : args) {
    if (arg == "--list-rules") {
      std::fputs(ListRulesText().c_str(), stdout);
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value == "text") {
        format = AnalysisFormat::kText;
      } else if (value == "json") {
        format = AnalysisFormat::kJson;
      } else if (value == "sarif") {
        format = AnalysisFormat::kSarif;
      } else {
        std::fprintf(stderr, "verify: unknown --format '%s' (want text|json|sarif)\n",
                     value.c_str());
        return 2;
      }
    } else if (arg.rfind("--Werror=", 0) == 0) {
      options.werror.push_back(arg.substr(9));
    } else if (arg.rfind("--Wno=", 0) == 0) {
      options.wno.push_back(arg.substr(6));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      options.baseline_path = arg.substr(11);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "verify: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else if (!path.empty()) {
      std::fprintf(stderr, "verify: more than one input file ('%s' and '%s')\n", path.c_str(),
                   arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "verify: no input file (or use --list-rules)\n");
    return 2;
  }
  // The analysis layer cannot link the runtime; lowering verified graphs into
  // plans for the plan passes is injected here.
  options.plan_from_graph = [](const AbsGraph& graph, uint64_t seed) {
    Rng rng(seed);
    MultiTaskModel model(graph, rng);
    FusedEngine engine(&model);
    return engine.ExportPlan();
  };
  const AnalysisReport report = AnalyzeFile(path, options);
  std::fputs(RenderAnalysis(report, format).c_str(), stdout);
  return report.exit_code();
}

// Lowers the configured benchmark (or a saved fused graph) into an execution
// plan and writes it as a `gmorph-plan v1` text file — the artifact the
// analysis driver lints. `export_quantized = true` calibrates on a small
// representative split and applies int8 first, so the exported plan carries
// the mixed-precision step dtypes.
int ExportPlanMode(const gmorph::Config& config, const std::string& out_path) {
  using namespace gmorph;
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));
  AbsGraph graph;
  std::string label;
  if (!BuildConfiguredGraph(config, &graph, &label)) {
    return 2;
  }
  Rng rng(seed);
  MultiTaskModel model(graph, rng);
  FusedEngine engine(&model);
  int quantized = 0;
  if (config.GetBool("export_quantized", false)) {
    const int calib_batches = static_cast<int>(config.GetInt("quant_calib_batches", 2));
    const int64_t calib_batch = config.GetInt("quant_calib_batch_size", 16);
    // Calibration needs representative inputs; materialize just enough of the
    // benchmark's train split to fill the calibration batches.
    BenchmarkScale scale;
    scale.train_size = std::max<int64_t>(1, calib_batches * calib_batch);
    scale.test_size = 1;
    scale.cnn_width = config.GetInt("cnn_width", 8);
    scale.noise_stddev = static_cast<float>(config.GetDouble("noise_stddev", 1.6));
    const int bench_index = static_cast<int>(config.GetInt("benchmark", 1));
    BenchmarkDef def = MakeBenchmark(bench_index, scale, seed);
    std::vector<Tensor> calib;
    int64_t start = 0;
    for (int b = 0; b < calib_batches && start < def.train.size(); ++b) {
      const int64_t count = std::min<int64_t>(calib_batch, def.train.size() - start);
      calib.push_back(def.train.InputBatch(start, count));
      start += count;
    }
    quantized = engine.Quantize(engine.Calibrate(calib));
    if (quantized == 0) {
      std::fprintf(stderr, "export-plan: no step of the plan is quantizable\n");
      return 2;
    }
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "export-plan: cannot write %s\n", out_path.c_str());
    return 2;
  }
  PlanToText(engine.ExportPlan(), out);
  if (!out) {
    std::fprintf(stderr, "export-plan: failed writing %s\n", out_path.c_str());
    return 2;
  }
  std::printf("exported plan for %s (%d step(s), %d int8) -> %s\n", label.c_str(),
              engine.num_steps(), quantized, out_path.c_str());
  return 0;
}

// Runs the real threaded server on the configured graph under open-loop
// Poisson load, with an optional mid-run hot-swap (see usage comment). Exits
// nonzero when any admitted request was lost — the bench/CI drop check.
int ServeMode(const gmorph::Config& config) {
  using namespace gmorph;
  AbsGraph graph;
  std::string label;
  if (!BuildConfiguredGraph(config, &graph, &label)) {
    return 2;
  }
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));
  const int num_replicas = static_cast<int>(config.GetInt("serve_replicas", 2));
  const int max_batch = static_cast<int>(config.GetInt("serve_max_batch", 8));
  const double qps = config.GetDouble("serve_qps", 500.0);
  const int num_requests = static_cast<int>(config.GetInt("serve_requests", 200));
  const double sla_ms = config.GetDouble("serve_sla_ms", 0.0);
  const bool do_swap = config.GetBool("serve_swap", true);
  const EngineKind kind = config.GetString("serve_engine", "fused") == "eager"
                              ? EngineKind::kEager
                              : EngineKind::kFused;
  GMORPH_CHECK(num_replicas >= 1 && max_batch >= 1 && num_requests >= 1 && qps > 0.0);

  std::printf("serving %s: %d replica(s), max_batch %d, %.0f qps x %d requests%s\n",
              label.c_str(), num_replicas, max_batch, qps, num_requests,
              do_swap ? ", hot-swap mid-run" : "");
  std::vector<EngineReplica> replicas;
  for (int i = 0; i < num_replicas; ++i) {
    replicas.push_back(MakeEngineReplica(kind, graph, seed + static_cast<uint64_t>(i)));
  }
  const Shape row = graph.node(graph.root()).output_shape;
  ReplicaPool pool(std::move(replicas), row, max_batch);
  const ServiceTimeTable table =
      CalibrateServiceTimes(*pool.engine(0), row, max_batch,
                            static_cast<int>(config.GetInt("calibration_runs", 3)));
  std::printf("calibrated service times (ms):");
  for (double ms : table.ms()) {
    std::printf(" %.3f", ms);
  }
  std::printf("\n");

  ServerOptions options;
  options.max_batch = max_batch;
  options.sla_ms = sla_ms;
  options.flight_recorder_path = g_flight_recorder_path;
  // Always record in serve mode (an event is one fetch_add + a slot write):
  // the lost-request dump below must have content even without the flag.
  StartFlightRecorder();
  ThreadedServer server(&pool, table, options);

  Rng rng(seed);
  const Tensor sample = Tensor::RandomGaussian(row, rng, 0.5f);
  const std::vector<double> arrivals = GenerateArrivalsMs(qps, num_requests, seed);
  const double t0 = server.NowMs();
  for (int i = 0; i < num_requests; ++i) {
    const double wait_ms = t0 + arrivals[static_cast<size_t>(i)] - server.NowMs();
    if (wait_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(wait_ms * 1000.0)));
    }
    server.Submit(&sample);
    if (do_swap && i == num_requests / 2) {
      EngineReplica retired = server.SwapReplica(
          0, MakeEngineReplica(kind, graph, seed + 1000));
      GMORPH_CHECK(static_cast<bool>(retired));
    }
  }
  server.Drain();
  server.Stop();

  const ServingStats stats = server.Stats();
  const int64_t lost = server.submitted() - server.completed() - server.shed();
  std::printf("served %lld request(s) in %d batch(es), shed %lld, swaps %lld, lost %lld\n",
              static_cast<long long>(server.completed()), stats.num_batches,
              static_cast<long long>(server.shed()),
              static_cast<long long>(pool.swap_count()), static_cast<long long>(lost));
  std::printf("throughput %.1f qps | latency ms p50 %.3f p95 %.3f p99 %.3f mean %.3f | "
              "mean batch %.2f\n",
              stats.throughput_qps, stats.p50_latency_ms, stats.p95_latency_ms,
              stats.p99_latency_ms, stats.mean_latency_ms, stats.mean_batch_size);
  if (lost != 0) {
    std::fprintf(stderr, "serve: %lld admitted request(s) were lost\n",
                 static_cast<long long>(lost));
    // The flight recorder is the forensic record for exactly this failure;
    // dump it even when the user did not ask for a path.
    const std::string dump = g_flight_recorder_path.empty() ? "gmorph_flight_lost.json"
                                                            : g_flight_recorder_path;
    if (WriteFlightRecorderJson(dump)) {
      std::fprintf(stderr, "serve: flight recorder dumped to %s\n", dump.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmorph;
  // Observability flags are peeled off before mode parsing so they combine
  // with every mode; the env vars cover processes the CLI spawns indirectly.
  obs::InitTracingFromEnv();
  obs::InitMetricsFromEnv();
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      obs::WriteTraceJsonAtExit(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      obs::WriteMetricsJsonAtExit(argv[++i]);
    } else if (std::strncmp(argv[i], "--flight-recorder=", 18) == 0) {
      g_flight_recorder_path = argv[i] + 18;
      WriteFlightRecorderJsonAtExit(g_flight_recorder_path);
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc == 2 && std::strcmp(argv[1], "--print-default-config") == 0) {
    std::fputs(kDefaultConfig, stdout);
    return 0;
  }
  const bool dump_plan = argc == 3 && std::strcmp(argv[1], "--dump-plan") == 0;
  const bool profile = argc == 3 && std::strcmp(argv[1], "--profile") == 0;
  const bool autotune = argc == 3 && std::strcmp(argv[1], "--autotune") == 0;
  const bool quantize = argc == 3 && std::strcmp(argv[1], "--quantize") == 0;
  const bool verify = argc >= 2 && std::strcmp(argv[1], "--verify") == 0;
  const bool resume = argc == 4 && std::strcmp(argv[1], "--resume") == 0;
  const bool export_plan = argc == 4 && std::strcmp(argv[1], "--export-plan") == 0;
  const bool serve = argc == 3 && std::strcmp(argv[1], "--serve") == 0;
  if (argc != 2 && !dump_plan && !profile && !autotune && !quantize && !verify && !resume &&
      !export_plan && !serve) {
    std::fprintf(stderr,
                 "usage: %s [--trace <out.json>] [--metrics <out.json>]\n"
                 "                [--flight-recorder=<out.json>] <config-file>\n"
                 "       %s --resume <checkpoint> <config-file>\n"
                 "       %s --dump-plan <config-file>\n"
                 "       %s --profile <config-file>\n"
                 "       %s --autotune <config-file>\n"
                 "       %s --quantize <config-file>\n"
                 "       %s --export-plan <config-file> <out.plan>\n"
                 "       %s --serve <config-file>\n"
                 "       %s --verify [--list-rules] [--format=text|json|sarif]\n"
                 "                [--Werror=<rule|prefix>] [--Wno=<rule|prefix>]\n"
                 "                [--baseline=<file>]\n"
                 "                <graph|plan|config|evalcache|checkpoint|tunedb|quantrecipe|"
                 "machine>\n"
                 "       %s --print-default-config > gmorph.cfg\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0], argv[0], argv[0], argv[0],
                 argv[0], argv[0]);
    return 2;
  }
  if (verify) {
    try {
      return VerifyMode(std::vector<std::string>(argv + 2, argv + argc));
    } catch (const CheckError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  Config config;
  try {
    config = Config::FromFile(
        argv[resume                                                                     ? 3
             : (dump_plan || profile || autotune || quantize || export_plan || serve) ? 2
                                                                                        : 1]);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // Load the checkpoint before the (expensive) teacher pre-training so a
  // corrupt file fails fast with its diagnostics.
  SearchCheckpoint checkpoint;
  if (resume) {
    CheckpointLoadResult loaded = TryLoadCheckpoint(argv[2]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot resume from %s:\n%s", argv[2],
                   loaded.diagnostics.ToString().c_str());
      return 2;
    }
    checkpoint = std::move(*loaded.checkpoint);
  }

  // kernel_threads overrides GMORPH_NUM_THREADS / hardware concurrency.
  // Validated before the (expensive) teacher pre-training below.
  if (config.Has("kernel_threads")) {
    const int kernel_threads = static_cast<int>(config.GetInt("kernel_threads", 0));
    if (kernel_threads < 1) {
      std::fprintf(stderr, "config error: kernel_threads must be >= 1, got %d\n",
                   kernel_threads);
      return 2;
    }
    SetKernelThreads(kernel_threads);
  }

  if (dump_plan || profile || autotune || quantize || export_plan || serve) {
    try {
      return dump_plan   ? DumpPlanMode(config)
             : profile   ? ProfileMode(config)
             : autotune  ? AutotuneMode(config)
             : quantize  ? QuantizeMode(config)
             : serve     ? ServeMode(config)
                         : ExportPlanMode(config, argv[3]);
    } catch (const CheckError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  const int bench_index = static_cast<int>(config.GetInt("benchmark", 1));
  BenchmarkScale scale;
  scale.train_size = config.GetInt("train_size", 128);
  scale.test_size = config.GetInt("test_size", 64);
  scale.cnn_width = config.GetInt("cnn_width", 8);
  scale.noise_stddev = static_cast<float>(config.GetDouble("noise_stddev", 1.6));
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));

  std::printf("building benchmark B%d and pre-training teachers...\n", bench_index);
  BenchmarkDef def = MakeBenchmark(bench_index, scale, seed);
  Rng rng(seed);
  std::vector<std::unique_ptr<TaskModel>> teachers;
  std::vector<TaskModel*> ptrs;
  for (size_t t = 0; t < def.tasks.size(); ++t) {
    teachers.push_back(std::make_unique<TaskModel>(def.tasks[t].model, rng));
    TeacherTrainOptions topts;
    topts.epochs = static_cast<int>(config.GetInt("teacher_epochs", 6));
    const double score = TrainTeacher(*teachers.back(), def.train, def.test, t, topts);
    std::printf("  %-13s %-13s %s = %.3f\n", def.tasks[t].name.c_str(),
                def.tasks[t].model.name.c_str(), MetricKindName(def.tasks[t].metric).c_str(),
                score);
    ptrs.push_back(teachers.back().get());
  }

  GMorphOptions options;
  options.accuracy_drop_threshold = config.GetDouble("accuracy_drop_threshold", 0.01);
  options.iterations = static_cast<int>(config.GetInt("iterations", 20));
  options.max_mutations_per_pass =
      static_cast<int>(config.GetInt("max_mutations_per_pass", 2));
  options.policy = config.GetString("policy", "sa") == "random" ? PolicyKind::kRandom
                                                                : PolicyKind::kSimulatedAnnealing;
  options.predictive_termination = config.GetBool("predictive_termination", true);
  options.rule_based_filtering = config.GetBool("rule_based_filtering", true);
  options.metric = config.GetString("metric", "latency") == "flops" ? OptimizeMetric::kFlops
                                                                    : OptimizeMetric::kLatency;
  options.finetune.max_epochs = static_cast<int>(config.GetInt("finetune_epochs", 6));
  options.finetune.eval_interval = static_cast<int>(config.GetInt("eval_interval", 2));
  options.finetune.batch_size = config.GetInt("batch_size", 32);
  options.finetune.lr = static_cast<float>(config.GetDouble("learning_rate", 1e-3));
  options.parallel_candidates = static_cast<int>(config.GetInt("parallel_candidates", 1));
  options.num_threads = static_cast<int>(config.GetInt("search_threads", 1));
  options.seed = seed;
  options.verbose = config.GetBool("verbose", true);
  options.use_eval_cache = config.GetBool("use_eval_cache", false);
  options.cache_dir = config.GetString("cache_dir", "");
  options.checkpoint_path = config.GetString("checkpoint_path", "");
  options.checkpoint_every = static_cast<int>(config.GetInt("checkpoint_every", 0));
  options.quant.enabled = config.GetBool("quantize_search", false);
  if (options.quant.enabled) {
    options.quant.calib_batches = static_cast<int>(config.GetInt("quant_calib_batches", 2));
    options.quant.calib_batch_size = config.GetInt("quant_calib_batch_size", 16);
    options.quant.drop_budget = config.GetDouble("quant_drop_budget", 0.01);
    options.quant_score = ScoreQuantizedEngine;
  }
  if (options.verbose) {
    SetLogLevel(LogLevel::kInfo);
  }
  if (resume && checkpoint.options_hash != SearchOptionsHash(options)) {
    std::fprintf(stderr,
                 "cannot resume from %s: the checkpoint was written under different search "
                 "options (hash %016llx, config gives %016llx)\n",
                 argv[2], static_cast<unsigned long long>(checkpoint.options_hash),
                 static_cast<unsigned long long>(SearchOptionsHash(options)));
    return 2;
  }

  if (resume) {
    std::printf("resuming at iteration %d of %d (drop < %.1f%%)...\n", checkpoint.next_iteration,
                options.iterations, options.accuracy_drop_threshold * 100);
  } else {
    std::printf("searching (%d iterations, drop < %.1f%%)...\n", options.iterations,
                options.accuracy_drop_threshold * 100);
  }
  GMorph gmorph(ptrs, &def.train, &def.test, options);
  GMorphResult result = resume ? gmorph.Resume(checkpoint) : gmorph.Run();

  std::printf("\nsearch finished in %.1fs: %.2f ms -> %.2f ms (%.2fx), FLOPs %.2fx\n",
              result.search_seconds, result.original_latency_ms, result.best_latency_ms,
              result.speedup,
              static_cast<double>(result.original_flops) /
                  static_cast<double>(std::max<int64_t>(1, result.best_flops)));
  std::printf("  %d finetuned, %d filtered, %d rejected, %d cache hit(s), %d checkpoint(s)\n",
              result.candidates_finetuned, result.candidates_filtered,
              result.candidates_rejected, result.cache_hits, result.checkpoints_written);
  std::printf(
      "  stage seconds: sample %.2f, verify %.2f, profile %.2f, finetune %.2f, score %.2f\n",
      result.stage_seconds.sample, result.stage_seconds.verify, result.stage_seconds.profile,
      result.stage_seconds.finetune, result.stage_seconds.score);
  for (size_t t = 0; t < def.tasks.size(); ++t) {
    std::printf("  %-13s teacher %.3f -> fused %.3f\n", def.tasks[t].name.c_str(),
                result.teacher_scores[t], result.best_task_scores[t]);
  }
  if (result.best_quant.has_value()) {
    const QuantOutcome& q = *result.best_quant;
    std::printf("  int8 plan: %d step(s) quantized, %.2f ms, worst drop vs f32 %+.4f [%s]\n",
                q.quantized_steps, q.latency_ms, q.max_drop,
                q.within_budget ? "within budget" : "over budget");
  }
  std::printf("\n%s", result.best_graph.ToString().c_str());

  const std::string graph_path = config.GetString("output_graph", "");
  if (!graph_path.empty()) {
    if (SaveGraph(graph_path, result.best_graph)) {
      std::printf("fused model written to %s\n", graph_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", graph_path.c_str());
    }
  }
  const std::string dot_path = config.GetString("output_dot", "");
  if (!dot_path.empty()) {
    if (WriteDotFile(dot_path, result.best_graph, def.id)) {
      std::printf("graphviz rendering written to %s (render: dot -Tpng %s)\n",
                  dot_path.c_str(), dot_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", dot_path.c_str());
    }
  }
  return 0;
}
