# Zoo plan-export lint: for every benchmark scenario, export the lowered
# execution plan (f32 and, where requested, int8-quantized), then run the full
# analysis driver over it — the plan verifier plus the dtype-propagation and
# peak-memory dataflow analyses must all come back clean (exit 0). This is the
# ctest twin of the CI lint job: real planner output, not hand-written
# fixtures, goes through the same pipeline as the seeded-defect files.
#
# Invoked by ctest as:
#   cmake -DCLI=<gmorph_cli> -DOUT_DIR=<dir> -DBENCHMARKS=1;2;...
#         [-DQUANTIZED=ON] -P run_plan_export_lint.cmake

if(NOT DEFINED BENCHMARKS)
  set(BENCHMARKS 1)
endif()

foreach(bench ${BENCHMARKS})
  set(modes "f32")
  if(QUANTIZED)
    list(APPEND modes "int8")
  endif()
  foreach(mode ${modes})
    set(CFG "${OUT_DIR}/export_b${bench}_${mode}.cfg")
    set(PLAN "${OUT_DIR}/export_b${bench}_${mode}.plan")
    file(REMOVE "${CFG}" "${PLAN}")
    file(WRITE "${CFG}" "benchmark = ${bench}\nseed = 42\n")
    if(mode STREQUAL "int8")
      file(APPEND "${CFG}" "export_quantized = true\n")
    endif()

    execute_process(
      COMMAND "${CLI}" "--export-plan" "${CFG}" "${PLAN}"
      RESULT_VARIABLE export_rc
      OUTPUT_VARIABLE export_out
      ERROR_VARIABLE export_err)
    if(NOT export_rc EQUAL 0)
      message(FATAL_ERROR "--export-plan B${bench} ${mode} exited ${export_rc}:\n${export_out}\n${export_err}")
    endif()
    if(NOT EXISTS "${PLAN}")
      message(FATAL_ERROR "--export-plan B${bench} ${mode} wrote no plan file")
    endif()
    if(mode STREQUAL "int8" AND NOT export_out MATCHES "\\(([0-9]+) step\\(s\\), ([1-9][0-9]*) int8\\)")
      message(FATAL_ERROR "quantized export for B${bench} carries no int8 step:\n${export_out}")
    endif()

    execute_process(
      COMMAND "${CLI}" "--verify" "${PLAN}"
      RESULT_VARIABLE verify_rc
      OUTPUT_VARIABLE verify_out
      ERROR_VARIABLE verify_err)
    if(NOT verify_rc EQUAL 0)
      message(FATAL_ERROR "exported B${bench} ${mode} plan failed the lint (${verify_rc}):\n${verify_out}\n${verify_err}")
    endif()
    # The dataflow passes actually ran: the memory certifier's summary note
    # must be in the clean output.
    if(NOT verify_out MATCHES "plan\\.mem\\.summary")
      message(FATAL_ERROR "lint of B${bench} ${mode} shows no mem-certifier summary:\n${verify_out}")
    endif()
  endforeach()
endforeach()
