#include "src/core/multitask_model.h"

#include <gtest/gtest.h>

#include "src/core/model_parser.h"
#include "src/core/mutation.h"
#include "src/models/zoo.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

using testing::MaxDiff;

struct TwoTeachers {
  std::unique_ptr<TaskModel> a;
  std::unique_ptr<TaskModel> b;
};

TwoTeachers MakeTeachers(Rng& rng) {
  VisionModelOptions opts;
  opts.base_width = 4;
  TwoTeachers t;
  opts.classes = 3;
  t.a = std::make_unique<TaskModel>(MakeVgg11(opts), rng);
  opts.classes = 2;
  t.b = std::make_unique<TaskModel>(MakeVgg11(opts), rng);
  return t;
}

TEST(MultiTaskModelTest, OriginalGraphReproducesTeacherOutputs) {
  Rng rng(1);
  TwoTeachers teachers = MakeTeachers(rng);
  AbsGraph g = ParseTaskModels({teachers.a.get(), teachers.b.get()});
  MultiTaskModel model(g, rng);

  Tensor x = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);
  std::vector<Tensor> outs = model.Forward(x, /*training=*/false);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_LT(MaxDiff(outs[0], teachers.a->Forward(x, false)), 1e-4f);
  EXPECT_LT(MaxDiff(outs[1], teachers.b->Forward(x, false)), 1e-4f);
}

TEST(MultiTaskModelTest, FreshWeightsWhenNodeHasNone) {
  Rng rng(2);
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 2;
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts)});  // spec-only: no weights
  MultiTaskModel model(g, rng);
  Tensor x = Tensor::RandomGaussian(Shape{1, 3, 32, 32}, rng);
  EXPECT_EQ(model.Forward(x, false)[0].shape().dims(), (std::vector<int64_t>{1, 2}));
}

TEST(MultiTaskModelTest, SharedNodeGradAccumulatesOverTasks) {
  Rng rng(3);
  TwoTeachers teachers = MakeTeachers(rng);
  AbsGraph g = ParseTaskModels({teachers.a.get(), teachers.b.get()});
  // Pair the *second* blocks: task 1's block reuses task 0's second-block
  // input, which makes the first conv shared (paper Fig. 5, panel 2).
  const int second0 = g.node(g.node(g.root()).children[0]).children[0];
  const int second1 = g.node(g.node(g.root()).children[1]).children[0];
  ASSERT_TRUE(ApplyMutation(g, {second0, second1}));

  MultiTaskModel model(g, rng);
  Tensor x = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);

  auto shared_grad_norm = [&](bool include_b) {
    std::vector<Tensor> outs = model.Forward(x, /*training=*/true);
    std::vector<Tensor> grads(2);
    grads[0] = Tensor::Full(outs[0].shape(), 1.0f);
    if (include_b) {
      grads[1] = Tensor::Full(outs[1].shape(), 1.0f);
    }
    model.ZeroGrad();
    model.Backward(grads);
    // First parameter of the shared stem conv.
    float sum = 0.0f;
    for (Parameter* p : model.Parameters()) {
      sum += MaxAbs(p->grad);
      break;
    }
    return sum;
  };
  const float one_task = shared_grad_norm(false);
  const float two_tasks = shared_grad_norm(true);
  EXPECT_GT(one_task, 0.0f);
  EXPECT_NE(one_task, two_tasks);  // second head contributes extra gradient
}

TEST(MultiTaskModelTest, BackwardReturnsInputGradient) {
  Rng rng(4);
  TwoTeachers teachers = MakeTeachers(rng);
  AbsGraph g = ParseTaskModels({teachers.a.get(), teachers.b.get()});
  MultiTaskModel model(g, rng);
  Tensor x = Tensor::RandomGaussian(Shape{1, 3, 32, 32}, rng);
  std::vector<Tensor> outs = model.Forward(x, true);
  std::vector<Tensor> grads = {Tensor::Full(outs[0].shape(), 1.0f),
                               Tensor::Full(outs[1].shape(), 1.0f)};
  Tensor gx = model.Backward(grads);
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_GT(MaxAbs(gx), 0.0f);
}

TEST(MultiTaskModelTest, ExportTrainedGraphRoundTrips) {
  Rng rng(5);
  TwoTeachers teachers = MakeTeachers(rng);
  AbsGraph g = ParseTaskModels({teachers.a.get(), teachers.b.get()});
  MultiTaskModel model(g, rng);
  // Perturb weights with one training step so export differs from the input.
  Tensor x = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);
  Adam opt(model.Parameters(), 1e-2f);
  std::vector<Tensor> outs = model.Forward(x, true);
  model.Backward({Tensor::Full(outs[0].shape(), 1.0f), Tensor::Full(outs[1].shape(), 1.0f)});
  opt.Step();

  AbsGraph trained = model.ExportTrainedGraph();
  MultiTaskModel reloaded(trained, rng);
  std::vector<Tensor> want = model.Forward(x, false);
  std::vector<Tensor> got = reloaded.Forward(x, false);
  EXPECT_LT(MaxDiff(got[0], want[0]), 1e-5f);
  EXPECT_LT(MaxDiff(got[1], want[1]), 1e-5f);
}

TEST(MultiTaskModelTest, CapacityMatchesGraph) {
  Rng rng(6);
  TwoTeachers teachers = MakeTeachers(rng);
  AbsGraph g = ParseTaskModels({teachers.a.get(), teachers.b.get()});
  MultiTaskModel model(g, rng);
  EXPECT_EQ(model.TotalCapacity(), g.TotalCapacity());
}

TEST(MultiTaskModelTest, MutatedModelStillProducesAllHeads) {
  Rng rng(7);
  TwoTeachers teachers = MakeTeachers(rng);
  AbsGraph g = ParseTaskModels({teachers.a.get(), teachers.b.get()});
  std::optional<AbsGraph> mutated = SampleMutatePass(g, 3, ShapeSimilarity::kSimilar, rng);
  ASSERT_TRUE(mutated.has_value());
  MultiTaskModel model(*mutated, rng);
  Tensor x = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);
  std::vector<Tensor> outs = model.Forward(x, false);
  EXPECT_EQ(outs[0].shape().dims(), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(outs[1].shape().dims(), (std::vector<int64_t>{2, 2}));
}

}  // namespace
}  // namespace gmorph
