# End-to-end autotuning smoke: a cold `gmorph_cli --autotune` must benchmark
# solvers and write a tuning DB, the DB must pass `gmorph_cli --verify`, and a
# warm rerun against the populated DB must perform ZERO tuning benchmarks
# (the kernels.autotune_benchmarks counter in the metrics snapshot is the
# acceptance check — warm processes plan at full speed).
#
# Invoked by ctest as:
#   cmake -DCLI=<gmorph_cli> -DCFG=<cli_trace_smoke.cfg> -DOUT_DIR=<dir>
#         -P run_autotune_smoke.cmake

set(TUNE_DB "${OUT_DIR}/autotune_smoke.tunedb")
set(COLD_METRICS "${OUT_DIR}/autotune_cold_metrics.json")
set(WARM_METRICS "${OUT_DIR}/autotune_warm_metrics.json")
file(REMOVE "${TUNE_DB}" "${COLD_METRICS}" "${WARM_METRICS}")

# Cold run: no DB yet, so every shape must be benchmarked.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "GMORPH_TUNE_DB=${TUNE_DB}" "GMORPH_METRICS=${COLD_METRICS}"
          "${CLI}" "--autotune" "${CFG}"
  RESULT_VARIABLE cold_rc
  OUTPUT_VARIABLE cold_out
  ERROR_VARIABLE cold_err)
if(NOT cold_rc EQUAL 0)
  message(FATAL_ERROR "cold --autotune exited ${cold_rc}:\n${cold_out}\n${cold_err}")
endif()
if(NOT EXISTS "${TUNE_DB}")
  message(FATAL_ERROR "--autotune did not write ${TUNE_DB}")
endif()
if(NOT cold_out MATCHES "tuned ([1-9][0-9]*) shape")
  message(FATAL_ERROR "cold --autotune tuned nothing:\n${cold_out}")
endif()

file(READ "${COLD_METRICS}" cold_metrics)
if(NOT cold_metrics MATCHES "\"kernels.autotune_benchmarks\":([0-9]+)")
  message(FATAL_ERROR "cold metrics missing kernels.autotune_benchmarks:\n${cold_metrics}")
endif()
if(CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "cold run reported zero solver benchmarks:\n${cold_metrics}")
endif()

# The written DB must pass the strict linter.
execute_process(
  COMMAND "${CLI}" "--verify" "${TUNE_DB}"
  RESULT_VARIABLE verify_rc
  OUTPUT_VARIABLE verify_out
  ERROR_VARIABLE verify_err)
if(NOT verify_rc EQUAL 0)
  message(FATAL_ERROR "--verify rejected the tuned DB (${verify_rc}):\n${verify_out}\n${verify_err}")
endif()

# Warm run: every shape is already tuned, so zero benchmarks may run.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "GMORPH_TUNE_DB=${TUNE_DB}" "GMORPH_METRICS=${WARM_METRICS}"
          "${CLI}" "--autotune" "${CFG}"
  RESULT_VARIABLE warm_rc
  OUTPUT_VARIABLE warm_out
  ERROR_VARIABLE warm_err)
if(NOT warm_rc EQUAL 0)
  message(FATAL_ERROR "warm --autotune exited ${warm_rc}:\n${warm_out}\n${warm_err}")
endif()
if(NOT warm_out MATCHES "tuned 0 shape")
  message(FATAL_ERROR "warm --autotune re-tuned shapes instead of reusing:\n${warm_out}")
endif()

file(READ "${WARM_METRICS}" warm_metrics)
if(NOT warm_metrics MATCHES "\"kernels.autotune_benchmarks\":([0-9]+)")
  message(FATAL_ERROR "warm metrics missing kernels.autotune_benchmarks:\n${warm_metrics}")
endif()
if(NOT CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR
          "warm run performed ${CMAKE_MATCH_1} solver benchmarks; expected zero:\n${warm_metrics}")
endif()
if(NOT warm_metrics MATCHES "kernels.autotune_cached")
  message(FATAL_ERROR "warm metrics missing kernels.autotune_cached:\n${warm_metrics}")
endif()
