# Rule-catalog doc sync: docs/RULES.md is generated from
# `gmorph_cli --verify --list-rules` and must stay byte-identical to it. When
# this test fails, regenerate with:
#   build/tools/gmorph_cli --verify --list-rules > docs/RULES.md
#
# Invoked by ctest as:
#   cmake -DCLI=<gmorph_cli> -DDOC=<docs/RULES.md> -DOUT_DIR=<dir>
#         -P run_rules_doc_sync.cmake

set(GENERATED "${OUT_DIR}/rules_doc_sync.md")
file(REMOVE "${GENERATED}")

execute_process(
  COMMAND "${CLI}" "--verify" "--list-rules"
  RESULT_VARIABLE list_rc
  OUTPUT_VARIABLE list_out
  ERROR_VARIABLE list_err)
if(NOT list_rc EQUAL 0)
  message(FATAL_ERROR "--list-rules exited ${list_rc}:\n${list_err}")
endif()
file(WRITE "${GENERATED}" "${list_out}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${GENERATED}" "${DOC}"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "docs/RULES.md is out of date with the rule registry; regenerate with:\n"
          "  gmorph_cli --verify --list-rules > docs/RULES.md")
endif()
