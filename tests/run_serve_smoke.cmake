# Smoke test for the threaded serving path: runs `gmorph_cli --serve` on a
# tiny benchmark under real load (with a mid-run hot-swap) and validates the
# report and the metrics snapshot.
#
# Invoked by ctest as:
#   cmake -DCLI=<gmorph_cli> -DOUT_DIR=<dir> -P run_serve_smoke.cmake
#
# Checks:
#   - the CLI exits 0 (nonzero means an admitted request was lost),
#   - the report carries the zero-drop line ("lost 0") and a swap,
#   - the metrics snapshot holds the serving.* instruments and parses as
#     strict JSON (python3 -m json.tool, when python3 exists).

set(CFG_FILE "${OUT_DIR}/cli_serve_smoke.cfg")
set(METRICS_FILE "${OUT_DIR}/cli_serve_metrics.json")
file(REMOVE "${METRICS_FILE}")
file(WRITE "${CFG_FILE}" "\
benchmark = 1
cnn_width = 4
seed = 42
calibration_runs = 1
serve_engine = fused
serve_replicas = 2
serve_max_batch = 4
serve_qps = 600
serve_requests = 120
serve_sla_ms = 0
serve_swap = true
")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "GMORPH_METRICS=${METRICS_FILE}"
          "${CLI}" --serve "${CFG_FILE}"
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "gmorph_cli --serve exited ${run_rc}:\n${run_out}\n${run_err}")
endif()

foreach(needle "lost 0" "swaps 1" "throughput" "served 120 request(s)")
  string(FIND "${run_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "--serve report is missing expected content '${needle}':\n${run_out}")
  endif()
endforeach()

if(NOT EXISTS "${METRICS_FILE}")
  message(FATAL_ERROR "GMORPH_METRICS was set but ${METRICS_FILE} was not written")
endif()
file(READ "${METRICS_FILE}" metrics)
foreach(needle "serving.request_latency_ms" "serving.batch_size" "serving.queue_depth"
        "serving.requests" "serving.batches" "serving.engine_swaps")
  string(FIND "${metrics}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "metrics ${METRICS_FILE} is missing expected content: ${needle}")
  endif()
endforeach()

find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(COMMAND "${PYTHON3}" -m json.tool "${METRICS_FILE}"
                  RESULT_VARIABLE json_rc OUTPUT_QUIET ERROR_VARIABLE json_err)
  if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "${METRICS_FILE} is not valid JSON:\n${json_err}")
  endif()
else()
  message(STATUS "python3 not found; skipping strict JSON validation")
endif()
