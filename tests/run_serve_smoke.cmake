# Smoke test for the threaded serving path: runs `gmorph_cli --serve` on a
# tiny benchmark under real load (with a mid-run hot-swap) and validates the
# report and the metrics snapshot.
#
# Invoked by ctest as:
#   cmake -DCLI=<gmorph_cli> -DOUT_DIR=<dir> -P run_serve_smoke.cmake
#
# Checks:
#   - the CLI exits 0 (nonzero means an admitted request was lost),
#   - the report carries the zero-drop line ("lost 0") and a swap,
#   - the metrics snapshot holds the serving.* instruments (including the
#     admit->run-start queue-wait histogram and the process RSS gauges) and
#     parses as strict JSON (python3 -m json.tool, when python3 exists),
#   - --flight-recorder=<path> dumps the request-lifecycle event ring as
#     strict JSON carrying every lifecycle kind and the swap.

set(CFG_FILE "${OUT_DIR}/cli_serve_smoke.cfg")
set(METRICS_FILE "${OUT_DIR}/cli_serve_metrics.json")
set(FLIGHT_FILE "${OUT_DIR}/cli_serve_flight.json")
file(REMOVE "${METRICS_FILE}" "${FLIGHT_FILE}")
file(WRITE "${CFG_FILE}" "\
benchmark = 1
cnn_width = 4
seed = 42
calibration_runs = 1
serve_engine = fused
serve_replicas = 2
serve_max_batch = 4
serve_qps = 600
serve_requests = 120
serve_sla_ms = 0
serve_swap = true
")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "GMORPH_METRICS=${METRICS_FILE}"
          "${CLI}" --serve "--flight-recorder=${FLIGHT_FILE}" "${CFG_FILE}"
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "gmorph_cli --serve exited ${run_rc}:\n${run_out}\n${run_err}")
endif()

foreach(needle "lost 0" "swaps 1" "throughput" "served 120 request(s)")
  string(FIND "${run_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "--serve report is missing expected content '${needle}':\n${run_out}")
  endif()
endforeach()

if(NOT EXISTS "${METRICS_FILE}")
  message(FATAL_ERROR "GMORPH_METRICS was set but ${METRICS_FILE} was not written")
endif()
file(READ "${METRICS_FILE}" metrics)
foreach(needle "serving.request_latency_ms" "serving.batch_size" "serving.queue_depth"
        "serving.requests" "serving.batches" "serving.engine_swaps"
        "serving.queue_wait_ms" "proc.rss_bytes" "proc.peak_rss_bytes")
  string(FIND "${metrics}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "metrics ${METRICS_FILE} is missing expected content: ${needle}")
  endif()
endforeach()

# The flight recorder dump: every request lifecycle kind plus the hot-swap
# must appear (the run completes 120 requests with one mid-run swap).
if(NOT EXISTS "${FLIGHT_FILE}")
  message(FATAL_ERROR "--flight-recorder was set but ${FLIGHT_FILE} was not written")
endif()
file(READ "${FLIGHT_FILE}" flight)
foreach(needle "\"flight_recorder\"" "\"kind\":\"admit\"" "\"kind\":\"enqueue\""
        "\"kind\":\"batch-formed\"" "\"kind\":\"run-start\"" "\"kind\":\"done\""
        "\"kind\":\"swap\"")
  string(FIND "${flight}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "flight dump ${FLIGHT_FILE} is missing: ${needle}")
  endif()
endforeach()

find_program(PYTHON3 python3)
if(PYTHON3)
  foreach(json_file "${METRICS_FILE}" "${FLIGHT_FILE}")
    execute_process(COMMAND "${PYTHON3}" -m json.tool "${json_file}"
                    RESULT_VARIABLE json_rc OUTPUT_QUIET ERROR_VARIABLE json_err)
    if(NOT json_rc EQUAL 0)
      message(FATAL_ERROR "${json_file} is not valid JSON:\n${json_err}")
    endif()
  endforeach()
else()
  message(STATUS "python3 not found; skipping strict JSON validation")
endif()
