// Threaded serving backend: ReplicaPool batch gather / hot-swap and
// ThreadedServer continuous batching, SLA shedding, and swap-under-load.
// The concurrency tests here are the TSan targets of the `serving` label:
// producers hammer Submit() while the control thread hot-swaps replicas, and
// the invariant checked is that no admitted request is ever lost.
#include "src/serving/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/model_parser.h"
#include "src/models/zoo.h"
#include "src/serving/flight_recorder.h"
#include "src/serving/replica_pool.h"
#include "src/serving/scheduler.h"

namespace gmorph {
namespace {

// Stub engine: counts runs, records the last input, optionally sleeps to
// simulate service time. No model needed — EngineReplica tolerates a null
// model because only the engine participates in serving.
class StubEngine : public InferenceEngine {
 public:
  explicit StubEngine(double sleep_ms = 0.0) : sleep_ms_(sleep_ms) {}

  std::vector<Tensor> Run(const Tensor& input) override {
    runs_.fetch_add(1, std::memory_order_relaxed);
    rows_.fetch_add(input.shape().Dim(0), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_input_ = input;
    }
    if (sleep_ms_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(sleep_ms_ * 1000.0)));
    }
    return {};
  }

  std::string Name() const override { return "stub"; }

  int64_t runs() const { return runs_.load(std::memory_order_relaxed); }
  int64_t rows() const { return rows_.load(std::memory_order_relaxed); }
  Tensor last_input() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_input_;
  }

 private:
  double sleep_ms_;
  std::atomic<int64_t> runs_{0};
  std::atomic<int64_t> rows_{0};
  mutable std::mutex mu_;
  Tensor last_input_;
};

EngineReplica StubReplica(double sleep_ms = 0.0) {
  EngineReplica r;
  r.engine = std::make_unique<StubEngine>(sleep_ms);
  return r;
}

std::vector<EngineReplica> StubReplicas(int n, double sleep_ms = 0.0) {
  std::vector<EngineReplica> replicas;
  for (int i = 0; i < n; ++i) {
    replicas.push_back(StubReplica(sleep_ms));
  }
  return replicas;
}

const Shape kRow({1, 4});

TEST(ReplicaPoolTest, RunBatchGathersRowsIntoPreboundInput) {
  ReplicaPool pool(StubReplicas(1), kRow, /*max_batch=*/4, /*warm=*/false);
  auto* stub = static_cast<StubEngine*>(pool.engine(0));

  Tensor a = Tensor::Full(kRow, 1.0f);
  Tensor b = Tensor::Full(kRow, 2.0f);
  pool.RunBatch(0, {&a, &b});
  Tensor seen = stub->last_input();
  ASSERT_EQ(seen.shape().Dim(0), 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(seen.data()[i], 1.0f);
    EXPECT_EQ(seen.data()[4 + i], 2.0f);
  }

  // A null row is a zero payload — even after the prebound input held data.
  pool.RunBatch(0, {&b, nullptr});
  seen = stub->last_input();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(seen.data()[i], 2.0f);
    EXPECT_EQ(seen.data()[4 + i], 0.0f);
  }
  EXPECT_EQ(stub->runs(), 2);
  EXPECT_EQ(stub->rows(), 4);
}

TEST(ReplicaPoolTest, SwapReturnsPreviousReplicaAndWarmsIncoming) {
  ReplicaPool pool(StubReplicas(1), kRow, /*max_batch=*/2, /*warm=*/false);
  InferenceEngine* original = pool.engine(0);

  EngineReplica incoming = StubReplica();
  InferenceEngine* incoming_engine = incoming.engine.get();
  EngineReplica previous = pool.Swap(0, std::move(incoming), /*warm=*/true);

  EXPECT_EQ(previous.engine.get(), original);
  EXPECT_EQ(pool.engine(0), incoming_engine);
  EXPECT_EQ(pool.swap_count(), 1);
  // Warm-up ran the incoming engine once per batch size before installation.
  EXPECT_EQ(static_cast<StubEngine*>(incoming_engine)->runs(), 2);
}

TEST(ThreadedServerTest, ServesEverythingSubmitted) {
  ReplicaPool pool(StubReplicas(2, /*sleep_ms=*/0.2), kRow, 8, /*warm=*/false);
  ThreadedServer server(&pool, ServiceTimeTable(), ServerOptions{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(server.Submit());
  }
  server.Drain();
  EXPECT_EQ(server.completed(), 100);
  EXPECT_EQ(server.shed(), 0);
  server.Stop();

  const ServingStats stats = server.Stats();
  EXPECT_EQ(stats.num_completed, 100);
  EXPECT_GT(stats.throughput_qps, 0.0);
  EXPECT_GE(stats.mean_batch_size, 1.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_LE(stats.p95_latency_ms, stats.p99_latency_ms);
}

TEST(ThreadedServerTest, BacklogFormsMultiRequestBatches) {
  // One slow replica: while a 3ms batch runs, the queue builds up, so later
  // batches ride the continuous-batching path at sizes > 1.
  ReplicaPool pool(StubReplicas(1, /*sleep_ms=*/3.0), kRow, 8, /*warm=*/false);
  ThreadedServer server(&pool, ServiceTimeTable(), ServerOptions{});
  for (int i = 0; i < 48; ++i) {
    server.Submit();
  }
  server.Drain();
  server.Stop();
  const ServingStats stats = server.Stats();
  EXPECT_EQ(stats.num_completed, 48);
  EXPECT_GT(stats.mean_batch_size, 1.5);
  EXPECT_LE(stats.mean_batch_size, 8.0);
}

TEST(ThreadedServerTest, StopDrainsTheQueueFirst) {
  ReplicaPool pool(StubReplicas(1, /*sleep_ms=*/1.0), kRow, 4, /*warm=*/false);
  ServerOptions options;
  options.max_batch = 4;
  auto server = std::make_unique<ThreadedServer>(&pool, ServiceTimeTable(), options);
  for (int i = 0; i < 20; ++i) {
    server->Submit();
  }
  server->Stop();  // no Drain(): Stop itself must not abandon queued work
  EXPECT_EQ(server->completed(), 20);
}

TEST(ThreadedServerTest, SlaAdmissionShedsUnderBacklog) {
  // 5ms service, 12ms SLA, one replica, max_batch 4: with the optimistic
  // bound, a request finding >= 8 queued ahead is provably late. Flooding 64
  // requests far faster than 5ms drains keeps the queue deep, so a healthy
  // fraction must shed — and accounting must balance exactly.
  ReplicaPool pool(StubReplicas(1, /*sleep_ms=*/5.0), kRow, 4, /*warm=*/false);
  ServerOptions options;
  options.max_batch = 4;
  options.sla_ms = 12.0;
  ThreadedServer server(&pool, ServiceTimeTable({5.0, 5.0, 5.0, 5.0}), options);
  int admitted = 0;
  for (int i = 0; i < 64; ++i) {
    admitted += server.Submit() ? 1 : 0;
  }
  server.Drain();
  server.Stop();
  EXPECT_EQ(server.submitted(), 64);
  EXPECT_GT(server.shed(), 0);
  EXPECT_EQ(server.completed(), admitted);
  EXPECT_EQ(server.completed() + server.shed(), 64);
}

TEST(ThreadedServerTest, ImpossibleSlaShedsEverything) {
  ReplicaPool pool(StubReplicas(1), kRow, 4, /*warm=*/false);
  ServerOptions options;
  options.sla_ms = 0.5;  // below the 1ms fastest service time: never meetable
  options.max_batch = 4;
  ThreadedServer server(&pool, ServiceTimeTable({1.0, 1.0, 1.0, 1.0}), options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(server.Submit());
  }
  server.Stop();
  EXPECT_EQ(server.shed(), 10);
  EXPECT_EQ(server.completed(), 0);
}

// The TSan target: four producers flood Submit() while the control thread
// repeatedly hot-swaps both replica slots under load. Nothing admitted may be
// lost, swaps must all land, and the post-hoc stats must stay coherent.
TEST(ThreadedServerTest, HotSwapUnderLoadLosesNoRequests) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  constexpr int kSwaps = 8;

  ReplicaPool pool(StubReplicas(2, /*sleep_ms=*/0.5), kRow, 8, /*warm=*/false);
  ThreadedServer server(&pool, ServiceTimeTable(), ServerOptions{});

  std::vector<std::thread> producers;
  Tensor payload = Tensor::Full(kRow, 3.0f);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&server, &payload] {
      for (int i = 0; i < kPerProducer; ++i) {
        server.Submit(&payload);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }

  std::vector<EngineReplica> retired;
  for (int s = 0; s < kSwaps; ++s) {
    retired.push_back(server.SwapReplica(s % 2, StubReplica(/*sleep_ms=*/0.5)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  server.Drain();
  server.Stop();

  EXPECT_EQ(server.submitted(), kProducers * kPerProducer);
  EXPECT_EQ(server.completed(), kProducers * kPerProducer);  // zero lost
  EXPECT_EQ(server.shed(), 0);
  EXPECT_EQ(pool.swap_count(), kSwaps);
  for (const EngineReplica& r : retired) {
    EXPECT_TRUE(static_cast<bool>(r));  // every swap returned a live replica
  }
  // Every served row ran on exactly one engine, retired or current. Each of
  // the kSwaps incoming engines was also warmed once per batch size 1..8
  // before installation (36 rows each) — warm-up rows are not requests.
  int64_t rows = 0;
  for (const EngineReplica& r : retired) {
    rows += static_cast<const StubEngine*>(r.engine.get())->rows();
  }
  rows += static_cast<StubEngine*>(pool.engine(0))->rows();
  rows += static_cast<StubEngine*>(pool.engine(1))->rows();
  EXPECT_EQ(rows, kProducers * kPerProducer + kSwaps * 36);

  const ServingStats stats = server.Stats();
  EXPECT_EQ(stats.num_completed, kProducers * kPerProducer);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_LE(stats.p95_latency_ms, stats.p99_latency_ms);
  EXPECT_GE(stats.mean_batch_size, 1.0);
}

// Flight recorder against the real threaded backend: every admitted request
// must leave exactly one admit + enqueue + run-start + done, every shed
// request exactly one admit + shed, batch-formed must match num_batches, and
// a swap under load must land in the record. This is the forensic contract
// the lost-request dump in gmorph_cli relies on.
TEST(ThreadedServerTest, FlightRecorderAccountsForEveryRequest) {
  StopFlightRecorder();
  ClearFlightRecorder();
  StartFlightRecorder();

  constexpr int kRequests = 64;
  ReplicaPool pool(StubReplicas(2, /*sleep_ms=*/0.5), kRow, 8, /*warm=*/false);
  ThreadedServer server(&pool, ServiceTimeTable(), ServerOptions{});
  for (int i = 0; i < kRequests; ++i) {
    server.Submit();
    if (i == kRequests / 2) {
      server.SwapReplica(0, StubReplica(/*sleep_ms=*/0.5));
    }
  }
  server.Drain();
  server.Stop();
  StopFlightRecorder();

  const ServingStats stats = server.Stats();
  const std::vector<FlightEvent> events = FlightRecorderSnapshot();
  EXPECT_EQ(FlightDroppedCount(), 0u);

  // Per-request lifecycle ledger, indexed by submission order.
  struct Ledger {
    int admit = 0, shed = 0, enqueue = 0, run_start = 0, done = 0;
  };
  std::vector<Ledger> ledger(kRequests);
  int batches_formed = 0;
  int swaps = 0;
  for (const FlightEvent& e : events) {
    switch (e.kind) {
      case FlightEventKind::kBatchFormed:
        ++batches_formed;
        EXPECT_GE(e.request, 1);  // batch size
        EXPECT_GE(e.aux, 0);      // replica slot
        continue;
      case FlightEventKind::kSwap:
        ++swaps;
        continue;
      default:
        break;
    }
    ASSERT_GE(e.request, 0);
    ASSERT_LT(e.request, kRequests);
    Ledger& l = ledger[static_cast<size_t>(e.request)];
    switch (e.kind) {
      case FlightEventKind::kAdmit: ++l.admit; break;
      case FlightEventKind::kShed: ++l.shed; break;
      case FlightEventKind::kEnqueue: ++l.enqueue; break;
      case FlightEventKind::kRunStart: ++l.run_start; break;
      case FlightEventKind::kDone: ++l.done; break;
      default: break;
    }
  }
  for (int i = 0; i < kRequests; ++i) {
    const Ledger& l = ledger[static_cast<size_t>(i)];
    EXPECT_EQ(l.admit, 1) << "request " << i;
    // Either shed at admission or it went through the full pipeline — never
    // both, never neither.
    if (l.shed != 0) {
      EXPECT_EQ(l.shed, 1) << "request " << i;
      EXPECT_EQ(l.enqueue + l.run_start + l.done, 0) << "request " << i;
    } else {
      EXPECT_EQ(l.enqueue, 1) << "request " << i;
      EXPECT_EQ(l.run_start, 1) << "request " << i;
      EXPECT_EQ(l.done, 1) << "request " << i;
    }
  }
  EXPECT_EQ(batches_formed, stats.num_batches);
  EXPECT_EQ(swaps, 1);

  ClearFlightRecorder();
}

// The zero-overhead contract: with the recorder disabled, a full serving run
// leaves the ring untouched (the record path is one relaxed load + return).
TEST(ThreadedServerTest, FlightRecorderDisabledRecordsNothing) {
  StopFlightRecorder();
  ClearFlightRecorder();

  ReplicaPool pool(StubReplicas(1), kRow, 4, /*warm=*/false);
  ServerOptions options;
  options.max_batch = 4;
  ThreadedServer server(&pool, ServiceTimeTable(), options);
  for (int i = 0; i < 16; ++i) {
    server.Submit();
  }
  server.Drain();
  server.Stop();

  EXPECT_EQ(server.completed(), 16);
  EXPECT_EQ(FlightTotalRecorded(), 0u);
  EXPECT_TRUE(FlightRecorderSnapshot().empty());
}

TEST(ThreadedServerTest, RealEngineEndToEndWithHotSwap) {
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 2;
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts)});

  std::vector<EngineReplica> replicas;
  replicas.push_back(MakeEngineReplica(EngineKind::kEager, g, /*seed=*/11));
  replicas.push_back(MakeEngineReplica(EngineKind::kEager, g, /*seed=*/12));
  const Shape row = g.node(0).output_shape;
  ReplicaPool pool(std::move(replicas), row, /*max_batch=*/4);

  ServiceTimeTable table =
      CalibrateServiceTimes(*pool.engine(0), row, /*max_batch=*/4, /*repeats=*/1);
  ServerOptions options;
  options.max_batch = 4;
  ThreadedServer server(&pool, table, options);

  Rng rng(3);
  Tensor sample = Tensor::RandomGaussian(row, rng, 0.5f);
  for (int i = 0; i < 30; ++i) {
    server.Submit(&sample);
    if (i == 15) {
      EngineReplica old = server.SwapReplica(0, MakeEngineReplica(EngineKind::kEager, g, 13));
      EXPECT_TRUE(static_cast<bool>(old));
    }
  }
  server.Drain();
  server.Stop();
  EXPECT_EQ(server.completed(), 30);
  EXPECT_EQ(pool.swap_count(), 1);
  const ServingStats stats = server.Stats();
  EXPECT_GT(stats.throughput_qps, 0.0);
}

}  // namespace
}  // namespace gmorph
