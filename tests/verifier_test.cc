// Static-analysis subsystem tests: the check macro / diagnostics engine, the
// GraphVerifier (clean on every benchmark topology, specific rule per seeded
// graph defect), the PlanVerifier (clean on every lowered plan, specific rule
// per seeded plan defect), and the plan text round trip against the lintable
// testdata files.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/diagnostics.h"
#include "src/analysis/graph_verifier.h"
#include "src/analysis/plan_io.h"
#include "src/analysis/plan_verifier.h"
#include "src/common/check.h"
#include "src/core/model_parser.h"
#include "src/core/multitask_model.h"
#include "src/data/benchmarks.h"
#include "src/runtime/fused_engine.h"

#ifndef GMORPH_TESTDATA_DIR
#define GMORPH_TESTDATA_DIR "tests/testdata"
#endif

namespace gmorph {
namespace {

// ---------------------------------------------------------------------------
// Check macro + diagnostics engine
// ---------------------------------------------------------------------------

TEST(CheckMacroTest, PassingChecksAreSilent) {
  GMORPH_CHECK(1 + 1 == 2);
  GMORPH_CHECK(2 > 1, "math works " << 42);
  GMORPH_DCHECK(true);
  GMORPH_DCHECK(true, "also fine");
}

TEST(CheckMacroTest, FailureCarriesStructuredFields) {
  try {
    GMORPH_CHECK(1 == 2, "one is not " << 2);
    FAIL() << "check did not throw";
  } catch (const CheckError& e) {
    EXPECT_EQ(e.expr(), "1 == 2");
    EXPECT_NE(e.file().find("verifier_test"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    EXPECT_NE(e.message().find("one is not 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(CheckMacroTest, BareFormThrowsToo) {
  EXPECT_THROW(GMORPH_CHECK(false), CheckError);
}

TEST(CheckMacroTest, FromCheckErrorSharesReportingPath) {
  try {
    GMORPH_CHECK(false, "boom");
  } catch (const CheckError& e) {
    const Diagnostic d = Diagnostic::FromCheckError(e);
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_EQ(d.rule_id, "check.failed");
    EXPECT_NE(d.node_path.find("verifier_test"), std::string::npos);
    EXPECT_NE(d.message.find("boom"), std::string::npos);
  }
}

TEST(DiagnosticsTest, BuilderStreamsAndListAggregates) {
  DiagnosticList diags;
  EXPECT_TRUE(diags.ok());
  diags.Error("a.rule", "node 1") << "value is " << 7;
  diags.Warning("b.rule", "node 2") << "meh";
  EXPECT_FALSE(diags.ok());  // one error
  EXPECT_EQ(diags.error_count(), 1);
  EXPECT_EQ(diags.size(), 2u);
  EXPECT_TRUE(diags.HasRule("a.rule"));
  EXPECT_TRUE(diags.HasRule("b.rule"));
  EXPECT_FALSE(diags.HasRule("c.rule"));
  EXPECT_NE(diags.ToString().find("error[a.rule] node 1: value is 7"), std::string::npos);

  DiagnosticList warnings_only;
  warnings_only.Warning("w.rule", "x") << "warning";
  EXPECT_TRUE(warnings_only.ok());  // warnings don't fail a pass

  diags.Merge(warnings_only);
  EXPECT_EQ(diags.size(), 3u);
}

// ---------------------------------------------------------------------------
// GraphVerifier
// ---------------------------------------------------------------------------

AbsGraph BenchmarkGraph(int index) {
  BenchmarkScale scale;
  scale.train_size = 1;
  scale.test_size = 1;
  scale.cnn_width = 4;
  BenchmarkDef def = MakeBenchmark(index, scale, 123);
  std::vector<ModelSpec> specs;
  for (const BenchmarkTask& task : def.tasks) {
    specs.push_back(task.model);
  }
  return ParseModelSpecs(specs);
}

// Rebuilds the benchmark graph with one node surgically corrupted.
template <typename Fn>
AbsGraph CorruptGraph(int bench, Fn&& corrupt) {
  AbsGraph g = BenchmarkGraph(bench);
  std::vector<AbsNode> nodes = g.nodes();
  corrupt(nodes);
  return AbsGraph::FromNodesUnchecked(std::move(nodes), g.num_tasks());
}

TEST(GraphVerifierTest, CleanOnEveryBenchmark) {
  GraphVerifyOptions opts;
  opts.roundtrip = true;
  for (int bench = 1; bench <= 7; ++bench) {
    const DiagnosticList diags = VerifyGraph(BenchmarkGraph(bench), opts);
    EXPECT_TRUE(diags.ok()) << "B" << bench << ":\n" << diags.ToString();
  }
}

TEST(GraphVerifierTest, DetectsOutOfRangeParent) {
  const AbsGraph g = CorruptGraph(1, [](std::vector<AbsNode>& nodes) {
    nodes.back().parent = 9999;
  });
  const DiagnosticList diags = VerifyGraph(g);
  EXPECT_TRUE(diags.HasRule("graph.node.index"));
}

TEST(GraphVerifierTest, DetectsBrokenTreeLink) {
  const AbsGraph g = CorruptGraph(1, [](std::vector<AbsNode>& nodes) {
    // Duplicate a child entry: the child is now listed twice.
    for (AbsNode& n : nodes) {
      if (!n.children.empty()) {
        n.children.push_back(n.children.front());
        break;
      }
    }
  });
  const DiagnosticList diags = VerifyGraph(g);
  EXPECT_TRUE(diags.HasRule("graph.tree.link"));
}

TEST(GraphVerifierTest, DetectsEdgeShapeMismatch) {
  const AbsGraph g = CorruptGraph(1, [](std::vector<AbsNode>& nodes) {
    nodes.back().input_shape = Shape{1, 2, 3};
  });
  const DiagnosticList diags = VerifyGraph(g);
  EXPECT_TRUE(diags.HasRule("graph.shape.edge"));
}

TEST(GraphVerifierTest, DetectsShapeInferenceMismatch) {
  const AbsGraph g = CorruptGraph(1, [](std::vector<AbsNode>& nodes) {
    nodes.back().output_shape = Shape{12345};
  });
  const DiagnosticList diags = VerifyGraph(g);
  EXPECT_TRUE(diags.HasRule("graph.shape.infer"));
}

TEST(GraphVerifierTest, DetectsStaleCapacity) {
  const AbsGraph g = CorruptGraph(1, [](std::vector<AbsNode>& nodes) {
    nodes.back().capacity += 100;
  });
  const DiagnosticList diags = VerifyGraph(g);
  EXPECT_TRUE(diags.HasRule("graph.capacity.stale"));
}

TEST(GraphVerifierTest, DetectsUnknownBlockType) {
  const AbsGraph g = CorruptGraph(1, [](std::vector<AbsNode>& nodes) {
    nodes.back().spec.type = static_cast<BlockType>(99);
  });
  const DiagnosticList diags = VerifyGraph(g);
  EXPECT_TRUE(diags.HasRule("graph.spec.type"));
}

TEST(GraphVerifierTest, DetectsHeadTaskOutOfRange) {
  const AbsGraph g = CorruptGraph(1, [](std::vector<AbsNode>& nodes) {
    for (AbsNode& n : nodes) {
      if (n.IsHead()) {
        n.task_id = 42;
        break;
      }
    }
  });
  const DiagnosticList diags = VerifyGraph(g);
  EXPECT_TRUE(diags.HasRule("graph.head.task"));
  EXPECT_TRUE(diags.HasRule("graph.head.count"));  // its original task lost its head
}

// ---------------------------------------------------------------------------
// PlanVerifier — positive coverage on lowered plans
// ---------------------------------------------------------------------------

TEST(PlanVerifierTest, CleanOnEveryLoweredBenchmark) {
  for (int bench = 1; bench <= 7; ++bench) {
    Rng rng(7);
    const AbsGraph g = BenchmarkGraph(bench);
    MultiTaskModel model(g, rng);
    FusedEngine engine(&model);
    const DiagnosticList diags = VerifyPlan(engine.ExportPlan());
    EXPECT_TRUE(diags.ok()) << "B" << bench << ":\n" << diags.ToString();
  }
}

// ---------------------------------------------------------------------------
// PlanVerifier — hand-constructed defects, one rule per test
// ---------------------------------------------------------------------------

// A linear (4)->(4) step with weight (4,4); defaults keep the plan minimal.
PlanStep LinearStep(int in, int out, int group = 0) {
  PlanStep s;
  s.kind = PlanOp::kLinear;
  s.in0 = in;
  s.out = out;
  s.group = group;
  s.weight_shape = Shape{4, 4};
  return s;
}

PlanValue Val4(int buffer = -1, bool head = false) {
  PlanValue v;
  v.shape = Shape{4};
  v.buffer = buffer;
  v.is_head = head;
  return v;
}

// Rebuilds group step lists from the steps, like the engine and parser do.
void IndexGroups(PlanIR& plan) {
  for (int s = 0; s < static_cast<int>(plan.steps.size()); ++s) {
    plan.groups[static_cast<size_t>(plan.steps[static_cast<size_t>(s)].group)].steps.push_back(s);
  }
  for (int g = 1; g < static_cast<int>(plan.groups.size()); ++g) {
    plan.groups[static_cast<size_t>(plan.groups[static_cast<size_t>(g)].parent)]
        .children.push_back(g);
  }
}

PlanIR CleanChainPlan() {
  PlanIR plan;
  plan.values = {Val4(), Val4(0), Val4(1, /*head=*/true)};
  plan.groups.emplace_back();
  plan.buffers = {PlanBuffer{4, true}, PlanBuffer{4, false}};
  plan.steps = {LinearStep(0, 1), LinearStep(1, 2)};
  plan.head_values = {2};
  IndexGroups(plan);
  return plan;
}

TEST(PlanVerifierTest, CleanChainVerifies) {
  const DiagnosticList diags = VerifyPlan(CleanChainPlan());
  EXPECT_TRUE(diags.ok()) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsBufferOverlap) {
  PlanIR plan;
  // v1 and v2 share buffer 0, but v1 is read after v2's def.
  plan.values = {Val4(), Val4(0), Val4(0), Val4(1, true), Val4(2, true)};
  plan.groups.emplace_back();
  plan.buffers = {PlanBuffer{4, true}, PlanBuffer{4, false}, PlanBuffer{4, false}};
  plan.steps = {LinearStep(0, 1), LinearStep(0, 2), LinearStep(1, 3), LinearStep(2, 4)};
  plan.head_values = {3, 4};
  IndexGroups(plan);
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.buffer.overlap")) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsCrossBranchRace) {
  PlanIR plan;
  plan.values = {Val4(), Val4(0), Val4(1, true), Val4(2, true)};
  plan.groups.resize(3);
  plan.groups[1].parent = 0;
  plan.groups[2].parent = 0;
  plan.buffers = {PlanBuffer{4, true}, PlanBuffer{4, false}, PlanBuffer{4, false}};
  // v1 is written in branch group 1 and read from sibling group 2.
  plan.steps = {LinearStep(0, 1, 1), LinearStep(1, 2, 1), LinearStep(1, 3, 2)};
  plan.head_values = {2, 3};
  IndexGroups(plan);
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.race.cross_branch")) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsStaleAlias) {
  PlanIR plan;
  PlanValue root;  // (2,2) in buffer 0
  root.shape = Shape{2, 2};
  root.buffer = 0;
  PlanValue alias;  // flatten view of v1
  alias.shape = Shape{4};
  alias.alias_of = 1;
  PlanValue input;
  input.shape = Shape{2, 2};
  PlanValue head5;
  head5.shape = Shape{2, 2};
  head5.buffer = 2;
  head5.is_head = true;
  plan.values = {input, root, alias, root /* v3 reuses buffer 0 */, Val4(1, true), head5};
  plan.groups.emplace_back();
  plan.buffers = {PlanBuffer{4, true}, PlanBuffer{4, false}, PlanBuffer{4, false}};
  PlanStep s0 = LinearStep(0, 1);
  s0.weight_shape = Shape{2, 2};
  PlanStep s1 = LinearStep(0, 3);
  s1.weight_shape = Shape{2, 2};
  PlanStep s2 = LinearStep(2, 4);  // reads the alias after v3 overwrote buffer 0
  PlanStep s3 = LinearStep(3, 5);
  s3.weight_shape = Shape{2, 2};
  plan.steps = {s0, s1, s2, s3};
  plan.head_values = {4, 5};
  IndexGroups(plan);
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.alias.stale")) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsUseBeforeDef) {
  PlanIR plan;
  plan.values = {Val4(), Val4(0), Val4(1), Val4(2, true)};
  plan.groups.emplace_back();
  plan.buffers = {PlanBuffer{4, true}, PlanBuffer{4, true}, PlanBuffer{4, false}};
  // Step 0 reads v2, which is only defined by step 1.
  plan.steps = {LinearStep(2, 1), LinearStep(0, 2), LinearStep(1, 3)};
  plan.head_values = {3};
  IndexGroups(plan);
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.race.use_before_def")) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsMultipleDefinitions) {
  PlanIR plan = CleanChainPlan();
  plan.steps.push_back(LinearStep(0, 1));  // v1 written twice
  plan.groups[0].steps.push_back(2);
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.value.multidef")) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsAliasCycle) {
  PlanIR plan = CleanChainPlan();
  PlanValue a;
  a.shape = Shape{4};
  a.alias_of = 4;
  PlanValue b;
  b.shape = Shape{4};
  b.alias_of = 3;
  plan.values.push_back(a);  // v3 -> v4
  plan.values.push_back(b);  // v4 -> v3
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.alias.cycle")) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsKernelShapeMismatch) {
  PlanIR plan = CleanChainPlan();
  plan.steps[0].weight_shape = Shape{4, 8};  // produces (8), but v1 is (4)
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.shape.linear")) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsBufferSizeMismatch) {
  PlanIR plan = CleanChainPlan();
  plan.buffers[0].elems_per_sample = 3;  // v1 holds 4 elems
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.buffer.size")) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsSharedHeadBuffer) {
  PlanIR plan = CleanChainPlan();
  plan.buffers[1].reusable = true;  // head buffer must be dedicated
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.buffer.head")) << diags.ToString();
}

TEST(PlanVerifierTest, DetectsIndexErrorsWithoutCrashing) {
  PlanIR plan = CleanChainPlan();
  plan.steps[1].in0 = 99;
  const DiagnosticList diags = VerifyPlan(plan);
  EXPECT_TRUE(diags.HasRule("plan.step.index")) << diags.ToString();
}

// ---------------------------------------------------------------------------
// Plan text I/O + the lintable testdata files
// ---------------------------------------------------------------------------

TEST(PlanIoTest, EnginePlanRoundTripsThroughText) {
  Rng rng(5);
  const AbsGraph g = BenchmarkGraph(2);
  MultiTaskModel model(g, rng);
  FusedEngine engine(&model);
  const PlanIR plan = engine.ExportPlan();

  std::stringstream text;
  PlanToText(plan, text);
  PlanParseResult parsed = ParsePlanText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.diagnostics.ToString();

  ASSERT_EQ(parsed.plan.values.size(), plan.values.size());
  ASSERT_EQ(parsed.plan.steps.size(), plan.steps.size());
  ASSERT_EQ(parsed.plan.groups.size(), plan.groups.size());
  ASSERT_EQ(parsed.plan.buffers.size(), plan.buffers.size());
  EXPECT_EQ(parsed.plan.head_values, plan.head_values);
  for (size_t v = 0; v < plan.values.size(); ++v) {
    EXPECT_EQ(parsed.plan.values[v].shape, plan.values[v].shape) << "v" << v;
    EXPECT_EQ(parsed.plan.values[v].alias_of, plan.values[v].alias_of) << "v" << v;
    EXPECT_EQ(parsed.plan.values[v].buffer, plan.values[v].buffer) << "v" << v;
  }
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    EXPECT_EQ(parsed.plan.steps[s].kind, plan.steps[s].kind) << "step " << s;
    EXPECT_EQ(parsed.plan.steps[s].group, plan.steps[s].group) << "step " << s;
  }
  // The reparsed plan must verify exactly as clean as the original.
  EXPECT_TRUE(VerifyPlan(parsed.plan).ok());
}

TEST(PlanIoTest, RejectsMissingHeaderAndBadFields) {
  std::stringstream no_header("value 0 shape=4\n");
  EXPECT_FALSE(ParsePlanText(no_header).ok());

  std::stringstream bad_field("gmorph-plan v1\nvalue 0 shape=4 wat=7\n");
  PlanParseResult r = ParsePlanText(bad_field);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diagnostics.HasRule("plan.io.parse"));
}

struct PlanFileCase {
  const char* file;
  const char* rule;  // nullptr: must verify clean
};

class PlanFileTest : public ::testing::TestWithParam<PlanFileCase> {};

// The same seeded-defect files `gmorph_cli --verify` lints in ctest: each
// must fire exactly its advertised rule (clean file: no errors at all).
TEST_P(PlanFileTest, FiresAdvertisedRule) {
  const PlanFileCase& c = GetParam();
  const std::string path = std::string(GMORPH_TESTDATA_DIR) + "/" + c.file;
  PlanParseResult parsed = ParsePlanTextFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.diagnostics.ToString();
  const DiagnosticList diags = VerifyPlan(parsed.plan);
  if (c.rule == nullptr) {
    EXPECT_TRUE(diags.ok()) << diags.ToString();
  } else {
    EXPECT_TRUE(diags.HasRule(c.rule)) << diags.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededDefects, PlanFileTest,
    ::testing::Values(PlanFileCase{"plan_clean.plan", nullptr},
                      PlanFileCase{"plan_buffer_overlap.plan", "plan.buffer.overlap"},
                      PlanFileCase{"plan_cross_branch_race.plan", "plan.race.cross_branch"},
                      PlanFileCase{"plan_stale_alias.plan", "plan.alias.stale"}));

}  // namespace
}  // namespace gmorph
