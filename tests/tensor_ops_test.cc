#include "src/tensor/tensor_ops.h"

#include <cmath>
#include <cstring>
#include <tuple>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/common/rng.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

using testing::MaxDiff;

Tensor NaiveMatmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.shape()[0];
  const int64_t k = a.shape()[1];
  const int64_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i * k + p)) * b.at(p * n + j);
      }
      c.at(i * n + j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(ElementwiseTest, AddSubMul) {
  Tensor a = Tensor::FromVector(Shape{4}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape{4}, {5, 6, 7, 8});
  EXPECT_EQ(Add(a, b).at(2), 10.0f);
  EXPECT_EQ(Sub(b, a).at(3), 4.0f);
  EXPECT_EQ(Mul(a, b).at(1), 12.0f);
}

TEST(ElementwiseTest, InPlaceVariants) {
  Tensor a = Tensor::FromVector(Shape{3}, {1, 2, 3});
  Tensor b = Tensor::FromVector(Shape{3}, {1, 1, 1});
  AddInPlace(a, b);
  EXPECT_EQ(a.at(0), 2.0f);
  ScaleInPlace(a, 2.0f);
  EXPECT_EQ(a.at(2), 8.0f);
  AxpyInPlace(a, -1.0f, b);
  EXPECT_EQ(a.at(1), 5.0f);
}

TEST(ElementwiseTest, ShapeMismatchThrows) {
  Tensor a(Shape{2});
  Tensor b(Shape{3});
  EXPECT_THROW(Add(a, b), CheckError);
}

// GEMM correctness sweep across sizes, including degenerate dims.
class MatmulParamTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(MatmulParamTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 1000 + k * 100 + n));
  Tensor a = Tensor::RandomGaussian(Shape{m, k}, rng);
  Tensor b = Tensor::RandomGaussian(Shape{k, n}, rng);
  EXPECT_LT(MaxDiff(Matmul(a, b), NaiveMatmul(a, b)), 1e-3f);
}

TEST_P(MatmulParamTest, TransposedVariantsConsistent) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m + k + n));
  Tensor a = Tensor::RandomGaussian(Shape{m, k}, rng);
  Tensor b = Tensor::RandomGaussian(Shape{k, n}, rng);
  Tensor c_ref = Matmul(a, b);

  // NT: C = A * B'^T where B' = B^T.
  Tensor bt(Shape{n, k});
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      bt.at(j * k + i) = b.at(i * n + j);
    }
  }
  Tensor c_nt(Shape{m, n});
  MatmulNT(a.data(), bt.data(), c_nt.data(), m, k, n);
  EXPECT_LT(MaxDiff(c_nt, c_ref), 1e-3f);

  // TN: C = A'^T * B where A' = A^T.
  Tensor at(Shape{k, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      at.at(j * m + i) = a.at(i * k + j);
    }
  }
  Tensor c_tn(Shape{m, n});
  MatmulTN(at.data(), b.data(), c_tn.data(), k, m, n);
  EXPECT_LT(MaxDiff(c_tn, c_ref), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulParamTest,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                                           std::make_tuple(5, 1, 5), std::make_tuple(4, 4, 4),
                                           std::make_tuple(3, 17, 9),
                                           std::make_tuple(16, 8, 16),
                                           std::make_tuple(10, 32, 6)));

// ---- Property tests: blocked/parallel GEMM vs the retained references ----
//
// The blocked kernels reorder float accumulation, so results are compared
// against RefMatmul* with a tolerance scaled by the result magnitude rather
// than bitwise.

void ExpectClose(const Tensor& got, const Tensor& want) {
  EXPECT_LE(MaxDiff(got, want), 1e-4f * (1.0f + MaxAbs(want)));
}

// Exercises NN, NT and TN (fresh + accumulate) at one (m, k, n).
void CheckGemmAgainstRef(int64_t m, int64_t k, int64_t n, Rng& rng) {
  SCOPED_TRACE(::testing::Message() << "m=" << m << " k=" << k << " n=" << n);
  for (const bool accumulate : {false, true}) {
    Tensor init = Tensor::RandomGaussian(Shape{m, n}, rng);
    {
      Tensor a = Tensor::RandomGaussian(Shape{m, k}, rng);
      Tensor b = Tensor::RandomGaussian(Shape{k, n}, rng);
      Tensor got = init.Clone();
      Tensor want = init.Clone();
      MatmulNN(a.data(), b.data(), got.data(), m, k, n, accumulate);
      RefMatmulNN(a.data(), b.data(), want.data(), m, k, n, accumulate);
      ExpectClose(got, want);
    }
    {
      // NT computes C[m,n] = A[m,k] * B[n,k]^T (argument order m, k, n).
      Tensor a = Tensor::RandomGaussian(Shape{m, k}, rng);
      Tensor b = Tensor::RandomGaussian(Shape{n, k}, rng);
      Tensor got = init.Clone();
      Tensor want = init.Clone();
      MatmulNT(a.data(), b.data(), got.data(), m, k, n, accumulate);
      RefMatmulNT(a.data(), b.data(), want.data(), m, k, n, accumulate);
      ExpectClose(got, want);
    }
    {
      // TN computes C[k,n] = A[m,k]^T * B[m,n] (argument order m, k, n).
      Tensor a = Tensor::RandomGaussian(Shape{m, k}, rng);
      Tensor b = Tensor::RandomGaussian(Shape{m, n}, rng);
      Tensor got = Tensor::RandomGaussian(Shape{k, n}, rng);
      Tensor want = got.Clone();
      MatmulTN(a.data(), b.data(), got.data(), m, k, n, accumulate);
      RefMatmulTN(a.data(), b.data(), want.data(), m, k, n, accumulate);
      ExpectClose(got, want);
    }
  }
}

TEST(GemmPropertyTest, RandomShapesMatchReference) {
  Rng rng(1234);
  for (int trial = 0; trial < 24; ++trial) {
    const int64_t m = 1 + rng.NextInt(120);
    const int64_t k = 1 + rng.NextInt(150);
    const int64_t n = 1 + rng.NextInt(140);
    CheckGemmAgainstRef(m, k, n, rng);
  }
}

TEST(GemmPropertyTest, BlockBoundaryShapesMatchReference) {
  // Odd sizes straddling the MC=96 / KC=256 / NC block edges and the
  // MR/NR register-tile edges, where packing has to zero-pad partial panels.
  Rng rng(77);
  for (const auto& [m, k, n] :
       {std::make_tuple<int64_t, int64_t, int64_t>(95, 255, 33),
        std::make_tuple<int64_t, int64_t, int64_t>(97, 257, 65),
        std::make_tuple<int64_t, int64_t, int64_t>(96, 256, 32),
        std::make_tuple<int64_t, int64_t, int64_t>(101, 130, 31),
        std::make_tuple<int64_t, int64_t, int64_t>(130, 300, 29),
        std::make_tuple<int64_t, int64_t, int64_t>(7, 300, 97),
        std::make_tuple<int64_t, int64_t, int64_t>(193, 3, 67)}) {
    CheckGemmAgainstRef(m, k, n, rng);
  }
}

// Chunk boundaries in ParallelFor depend only on the grain, and every
// reduction combines partials in chunk order, so results must be *bitwise*
// identical for any thread count.
TEST(GemmThreadDeterminismTest, BitwiseEqualAcrossThreadCounts) {
  const int restore = KernelThreads();
  Rng rng(99);
  for (const auto& [m, k, n] :
       {std::make_tuple<int64_t, int64_t, int64_t>(130, 64, 130),
        std::make_tuple<int64_t, int64_t, int64_t>(64, 300, 9),
        std::make_tuple<int64_t, int64_t, int64_t>(97, 97, 97)}) {
    Tensor a = Tensor::RandomGaussian(Shape{m, k}, rng);
    Tensor b = Tensor::RandomGaussian(Shape{k, n}, rng);
    Tensor c1(Shape{m, n});
    Tensor c4(Shape{m, n});
    SetKernelThreads(1);
    MatmulNN(a.data(), b.data(), c1.data(), m, k, n);
    SetKernelThreads(4);
    MatmulNN(a.data(), b.data(), c4.data(), m, k, n);
    EXPECT_EQ(std::memcmp(c1.data(), c4.data(), static_cast<size_t>(c1.size()) * sizeof(float)),
              0)
        << "m=" << m << " k=" << k << " n=" << n;

    Tensor bt = Tensor::RandomGaussian(Shape{n, k}, rng);
    SetKernelThreads(1);
    MatmulNT(a.data(), bt.data(), c1.data(), m, k, n);
    SetKernelThreads(4);
    MatmulNT(a.data(), bt.data(), c4.data(), m, k, n);
    EXPECT_EQ(std::memcmp(c1.data(), c4.data(), static_cast<size_t>(c1.size()) * sizeof(float)),
              0);

    Tensor bn = Tensor::RandomGaussian(Shape{m, n}, rng);
    Tensor d1(Shape{k, n});
    Tensor d4(Shape{k, n});
    SetKernelThreads(1);
    MatmulTN(a.data(), bn.data(), d1.data(), m, k, n);
    SetKernelThreads(4);
    MatmulTN(a.data(), bn.data(), d4.data(), m, k, n);
    EXPECT_EQ(std::memcmp(d1.data(), d4.data(), static_cast<size_t>(d1.size()) * sizeof(float)),
              0);
  }
  SetKernelThreads(restore);
}

TEST(MatmulTest, AccumulateAddsToExisting) {
  Rng rng(2);
  Tensor a = Tensor::RandomGaussian(Shape{3, 4}, rng);
  Tensor b = Tensor::RandomGaussian(Shape{4, 5}, rng);
  Tensor c = Tensor::Full(Shape{3, 5}, 1.0f);
  MatmulNN(a.data(), b.data(), c.data(), 3, 4, 5, /*accumulate=*/true);
  Tensor expect = Add(NaiveMatmul(a, b), Tensor::Full(Shape{3, 5}, 1.0f));
  EXPECT_LT(MaxDiff(c, expect), 1e-4f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(4);
  Tensor x = Tensor::RandomGaussian(Shape{6, 9}, rng, 3.0f);
  Tensor y = SoftmaxLastDim(x);
  for (int64_t r = 0; r < 6; ++r) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 9; ++j) {
      const float v = y.at(r * 9 + j);
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, InvariantToRowShift) {
  Rng rng(6);
  Tensor x = Tensor::RandomGaussian(Shape{2, 5}, rng);
  Tensor shifted = x.Clone();
  for (int64_t j = 0; j < 5; ++j) {
    shifted.at(j) += 100.0f;  // shift first row only
  }
  EXPECT_LT(MaxDiff(SoftmaxLastDim(x), SoftmaxLastDim(shifted)), 1e-5f);
}

TEST(SoftmaxTest, BackwardMatchesNumeric) {
  Rng rng(8);
  Tensor x = Tensor::RandomGaussian(Shape{2, 4}, rng);
  Tensor probe = Tensor::RandomGaussian(Shape{2, 4}, rng);
  Tensor y = SoftmaxLastDim(x);
  Tensor grad = SoftmaxBackwardLastDim(y, probe);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < x.size(); ++i) {
    Tensor xp = x.Clone();
    xp.at(i) += eps;
    Tensor xm = x.Clone();
    xm.at(i) -= eps;
    const float up = SumAll(Mul(SoftmaxLastDim(xp), probe));
    const float dn = SumAll(Mul(SoftmaxLastDim(xm), probe));
    EXPECT_NEAR(grad.at(i), (up - dn) / (2 * eps), 2e-3f);
  }
}

TEST(ReductionTest, SumMeanMaxAbs) {
  Tensor t = Tensor::FromVector(Shape{4}, {1, -5, 2, 2});
  EXPECT_FLOAT_EQ(SumAll(t), 0.0f);
  EXPECT_FLOAT_EQ(MeanAll(t), 0.0f);
  EXPECT_FLOAT_EQ(MaxAbs(t), 5.0f);
}

TEST(ArgmaxTest, PicksRowMaxima) {
  Tensor t = Tensor::FromVector(Shape{2, 3}, {0, 2, 1, 5, 4, 3});
  const std::vector<int> idx = ArgmaxRows(t);
  EXPECT_EQ(idx, (std::vector<int>{1, 0}));
}

}  // namespace
}  // namespace gmorph
