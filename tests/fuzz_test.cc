// Randomized stress tests: long mutation chains over every benchmark's graph
// topology, executable-model construction on deeply mutated graphs, and
// serialization fuzzing. These are the failure-injection counterpart of the
// targeted unit tests.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/analysis/graph_verifier.h"
#include "src/analysis/plan_verifier.h"
#include "src/common/check.h"
#include "src/core/graph_io.h"
#include "src/core/model_parser.h"
#include "src/core/multitask_model.h"
#include "src/core/mutation.h"
#include "src/data/benchmarks.h"
#include "src/runtime/fused_engine.h"

namespace gmorph {
namespace {

AbsGraph GraphForBenchmark(int index) {
  BenchmarkScale scale;
  scale.train_size = 4;  // datasets irrelevant here; keep generation cheap
  scale.test_size = 4;
  scale.cnn_width = 4;
  BenchmarkDef def = MakeBenchmark(index, scale, 77);
  std::vector<ModelSpec> specs;
  for (const BenchmarkTask& task : def.tasks) {
    specs.push_back(task.model);
  }
  return ParseModelSpecs(specs);
}

class MutationFuzzTest : public ::testing::TestWithParam<int> {};

// Long random mutation chains on every benchmark topology (CNNs, cross-family,
// transformers) keep all invariants; non-adapter capacity never grows.
TEST_P(MutationFuzzTest, LongChainsKeepInvariants) {
  const int bench = GetParam();
  AbsGraph g = GraphForBenchmark(bench);
  Rng rng(static_cast<uint64_t>(bench) * 13 + 1);
  auto non_rescale_capacity = [](const AbsGraph& graph) {
    int64_t total = 0;
    for (const AbsNode& n : graph.nodes()) {
      if (n.spec.type != BlockType::kRescale) {
        total += n.capacity;
      }
    }
    return total;
  };
  int64_t last = non_rescale_capacity(g);
  for (int step = 0; step < 20; ++step) {
    const auto pairs = FindShareablePairs(g, ShapeSimilarity::kSimilar);
    if (pairs.empty()) {
      break;
    }
    const SharePair pick =
        pairs[static_cast<size_t>(rng.NextInt(static_cast<int>(pairs.size())))];
    ASSERT_TRUE(ApplyMutation(g, pick));
    g.Validate();
    const int64_t now = non_rescale_capacity(g);
    EXPECT_LE(now, last) << "non-adapter capacity grew at step " << step;
    last = now;
    for (int t = 0; t < g.num_tasks(); ++t) {
      ASSERT_GE(g.HeadOfTask(t), 0);
    }
  }
}

// Deeply mutated graphs always materialize into executable models that emit
// one correctly shaped output per task.
TEST_P(MutationFuzzTest, MutatedGraphsExecute) {
  const int bench = GetParam();
  AbsGraph g = GraphForBenchmark(bench);
  Rng rng(static_cast<uint64_t>(bench) * 17 + 3);
  std::optional<AbsGraph> mutated = SampleMutatePass(g, 5, ShapeSimilarity::kSimilar, rng);
  const AbsGraph& final_graph = mutated.has_value() ? *mutated : g;
  MultiTaskModel model(final_graph, rng);
  const Shape input = final_graph.node(final_graph.root()).output_shape;
  const bool token_input = input.Rank() == 1;
  Tensor x = token_input ? Tensor::Zeros(input.WithBatch(2))
                         : Tensor::RandomGaussian(input.WithBatch(2), rng);
  std::vector<Tensor> outs = model.Forward(x, /*training=*/false);
  ASSERT_EQ(outs.size(), static_cast<size_t>(final_graph.num_tasks()));
  for (int t = 0; t < final_graph.num_tasks(); ++t) {
    EXPECT_EQ(outs[static_cast<size_t>(t)].shape().WithoutBatch(),
              final_graph.node(final_graph.HeadOfTask(t)).output_shape);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, MutationFuzzTest, ::testing::Range(1, 8));

class VerifierFuzzTest : public ::testing::TestWithParam<int> {};

// Every randomly mutated graph passes the GraphVerifier, lowers through the
// FusedEngine, and yields a plan the PlanVerifier proves race- and
// overlap-free. 7 benchmarks x 30 trials = 210 graphs per suite run.
TEST_P(VerifierFuzzTest, MutatedGraphsAndPlansVerifyClean) {
  const int bench = GetParam();
  AbsGraph base = GraphForBenchmark(bench);
  GraphVerifyOptions roundtrip;
  roundtrip.roundtrip = true;
  for (int trial = 0; trial < 30; ++trial) {
    Rng rng(static_cast<uint64_t>(bench) * 1009 + static_cast<uint64_t>(trial) * 31 + 7);
    const int num_mutations = 1 + rng.NextInt(4);
    std::optional<AbsGraph> mutated =
        SampleMutatePass(base, num_mutations, ShapeSimilarity::kSimilar, rng);
    const AbsGraph& g = mutated.has_value() ? *mutated : base;

    const DiagnosticList graph_verdict = VerifyGraph(g, roundtrip);
    ASSERT_TRUE(graph_verdict.ok())
        << "bench " << bench << " trial " << trial << ":\n" << graph_verdict.ToString();

    MultiTaskModel model(g, rng);
    FusedEngine engine(&model);
    const DiagnosticList plan_verdict = VerifyPlan(engine.ExportPlan());
    ASSERT_TRUE(plan_verdict.ok())
        << "bench " << bench << " trial " << trial << ":\n" << plan_verdict.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, VerifierFuzzTest, ::testing::Range(1, 8));

// Random byte-level corruption of serialized graphs must never crash the
// loader or yield an invalid graph — either the load fails with diagnostics
// or the corruption missed the parsed region and the graph verifies clean.
TEST(SerializationFuzzTest, CorruptGraphsRejectedOrHarmless) {
  AbsGraph g = GraphForBenchmark(1);
  const auto dir = std::filesystem::temp_directory_path() / "gmorph_fuzz";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "g.bin").string();
  ASSERT_TRUE(SaveGraph(path, g));
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();

  Rng rng(29);
  for (int trial = 0; trial < 30; ++trial) {
    std::string corrupted = bytes;
    // Flip a few random bytes / truncate.
    if (trial % 3 == 0) {
      corrupted.resize(static_cast<size_t>(rng.NextInt(static_cast<int>(bytes.size()))));
    } else {
      for (int flips = 0; flips < 4; ++flips) {
        const size_t pos = static_cast<size_t>(rng.NextInt(static_cast<int>(corrupted.size())));
        corrupted[pos] = static_cast<char>(rng.NextInt(256));
      }
    }
    const std::string cpath = (dir / "c.bin").string();
    std::ofstream out(cpath, std::ios::binary | std::ios::trunc);
    out.write(corrupted.data(), static_cast<std::streamsize>(corrupted.size()));
    out.close();
    GraphLoadResult loaded = TryLoadGraph(cpath);
    if (loaded.ok()) {
      // Accepted data must still be a fully valid graph.
      EXPECT_TRUE(VerifyGraph(*loaded.graph).ok()) << "trial " << trial;
    } else {
      // Rejections must carry at least one structured diagnostic, never an
      // exception or a partially-initialized graph.
      EXPECT_FALSE(loaded.diagnostics.ok()) << "trial " << trial;
      EXPECT_FALSE(loaded.graph.has_value());
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gmorph
