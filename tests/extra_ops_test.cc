#include <gtest/gtest.h>

#include "src/nn/activations.h"
#include "src/nn/pooling.h"
#include "src/tensor/conv_ops.h"
#include "src/tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

TEST(AvgPoolTest, ForwardAveragesWindows) {
  Tensor x = Tensor::FromVector(Shape{1, 1, 4, 4},
                                {1, 2, 3, 4,   //
                                 5, 6, 7, 8,   //
                                 9, 10, 11, 12,  //
                                 13, 14, 15, 16});
  Tensor y = AvgPool2dForward(x, 2, 2);
  EXPECT_EQ(y.shape().dims(), (std::vector<int64_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 3.5f);
  EXPECT_FLOAT_EQ(y.at(1), 5.5f);
  EXPECT_FLOAT_EQ(y.at(2), 11.5f);
  EXPECT_FLOAT_EQ(y.at(3), 13.5f);
}

TEST(AvgPoolTest, BackwardConservesMass) {
  Rng rng(1);
  Tensor g = Tensor::RandomGaussian(Shape{2, 3, 2, 2}, rng);
  Tensor gx = AvgPool2dBackward(Shape{2, 3, 4, 4}, g, 2, 2);
  EXPECT_NEAR(SumAll(gx), SumAll(g), 1e-4f);
}

TEST(AvgPoolTest, ModuleGradCheck) {
  Rng rng(2);
  AvgPool2d pool(2, 2);
  Tensor x = Tensor::RandomGaussian(Shape{2, 2, 4, 4}, rng);
  testing::GradCheckModule(pool, x, 5e-2f, rng);
}

TEST(SigmoidTest, ForwardRangeAndSymmetry) {
  Rng rng(3);
  Sigmoid sigmoid;
  Tensor x = Tensor::RandomGaussian(Shape{4, 5}, rng, 3.0f);
  Tensor y = sigmoid.Forward(x, false);
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y.at(i), 0.0f);
    EXPECT_LT(y.at(i), 1.0f);
  }
  Tensor zero = Tensor::Zeros(Shape{1});
  EXPECT_FLOAT_EQ(sigmoid.Forward(zero, false).at(0), 0.5f);
}

TEST(SigmoidTest, GradCheck) {
  Rng rng(4);
  Sigmoid sigmoid;
  Tensor x = Tensor::RandomGaussian(Shape{3, 4}, rng);
  testing::GradCheckModule(sigmoid, x, 5e-2f, rng);
}

TEST(TanhTest, ForwardAndGradCheck) {
  Rng rng(5);
  Tanh tanh_mod;
  Tensor zero = Tensor::Zeros(Shape{1});
  EXPECT_FLOAT_EQ(tanh_mod.Forward(zero, false).at(0), 0.0f);
  Tensor x = Tensor::RandomGaussian(Shape{3, 4}, rng);
  Tensor y = tanh_mod.Forward(x, false);
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_LT(std::fabs(y.at(i)), 1.0f);
  }
  testing::GradCheckModule(tanh_mod, x, 5e-2f, rng);
}

}  // namespace
}  // namespace gmorph
