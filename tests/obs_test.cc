// Tests for the observability subsystem (src/obs/): tracing ring buffers and
// Chrome-trace export, metrics registry, and the disabled fast path.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/timing.h"
#include "src/obs/trace.h"

namespace gmorph {
namespace {

// Parsed form of one exported "ph":"X" event.
struct ParsedEvent {
  std::string name;
  std::string cat;
  int tid = -1;
  double ts_us = 0.0;
  double dur_us = 0.0;
  double end_us() const { return ts_us + dur_us; }
};

// The exporter writes one event per line in a fixed field order; this scanner
// doubles as a format check (a line that is neither metadata nor a complete
// event fails the test).
std::vector<ParsedEvent> ParseTraceEvents(const std::string& json) {
  std::vector<ParsedEvent> events;
  size_t pos = 0;
  while (pos < json.size()) {
    size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) {
      eol = json.size();
    }
    std::string line = json.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line[0] == ',') {
      line.erase(0, 1);
    }
    if (line.rfind("{\"name\":", 0) != 0) {
      continue;  // array open/close, metadata prefix line
    }
    char name[64] = {0};
    char cat[32] = {0};
    ParsedEvent e;
    if (std::sscanf(line.c_str(),
                    "{\"name\":\"%63[^\"]\",\"cat\":\"%31[^\"]\",\"ph\":\"X\",\"pid\":1,"
                    "\"tid\":%d,\"ts\":%lf,\"dur\":%lf}",
                    name, cat, &e.tid, &e.ts_us, &e.dur_us) == 5) {
      e.name = name;
      e.cat = cat;
      events.push_back(e);
      continue;
    }
    // Anything else must be a metadata ("ph":"M") record.
    EXPECT_NE(line.find("\"ph\":\"M\""), std::string::npos) << "unparseable line: " << line;
  }
  return events;
}

int CountByName(const std::vector<ParsedEvent>& events, const std::string& name) {
  return static_cast<int>(
      std::count_if(events.begin(), events.end(),
                    [&](const ParsedEvent& e) { return e.name == name; }));
}

const ParsedEvent* FindByName(const std::vector<ParsedEvent>& events, const std::string& name) {
  for (const ParsedEvent& e : events) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

// Stops and clears process-wide tracing around each test so the suites stay
// order-independent.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::StopTracing();
    obs::ClearTrace();
  }
  void TearDown() override {
    obs::StopTracing();
    obs::ClearTrace();
  }
};

using ObsTraceExportTest = ObsTraceTest;
using ObsTraceParallelTest = ObsTraceTest;
using ObsDisabledModeTest = ObsTraceTest;

TEST_F(ObsTraceExportTest, NestedSpansExportWithNamesAndContainment) {
  obs::StartTracing();
  {
    obs::TraceSpan outer("search/iteration", obs::TraceCat::kSearch);
    {
      obs::TraceSpan mid("eval/profile", obs::TraceCat::kEval);
      obs::TraceSpan inner("node/1:conv3x3", obs::TraceCat::kEngine);
    }
  }
  obs::StopTracing();

  const std::string json = obs::TraceToJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  const std::vector<ParsedEvent> events = ParseTraceEvents(json);
  const ParsedEvent* outer = FindByName(events, "search/iteration");
  const ParsedEvent* mid = FindByName(events, "eval/profile");
  const ParsedEvent* inner = FindByName(events, "node/1:conv3x3");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->cat, "search");
  EXPECT_EQ(mid->cat, "eval");
  EXPECT_EQ(inner->cat, "engine");
  // All on the recording thread, properly nested in time.
  EXPECT_EQ(outer->tid, mid->tid);
  EXPECT_EQ(mid->tid, inner->tid);
  EXPECT_LE(outer->ts_us, mid->ts_us);
  EXPECT_GE(outer->end_us(), mid->end_us());
  EXPECT_LE(mid->ts_us, inner->ts_us);
  EXPECT_GE(mid->end_us(), inner->end_us());
}

TEST_F(ObsTraceExportTest, LongNamesAreTruncatedNotCorrupted) {
  obs::StartTracing();
  const std::string long_name(200, 'x');
  { obs::TraceSpan span(long_name, obs::TraceCat::kOther); }
  obs::StopTracing();
  const std::vector<ParsedEvent> events = ParseTraceEvents(obs::TraceToJson());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, std::string(obs::TraceSpan::kMaxName, 'x'));
}

TEST_F(ObsTraceExportTest, ManualSpansLandOnNamedVirtualLanes) {
  obs::StartTracing();
  obs::SetVirtualLaneName(2001, "sim/test-lane");
  obs::RecordManualSpan("request", obs::TraceCat::kServing, /*ts_us=*/1000.0,
                        /*dur_us=*/250.0, /*virtual_tid=*/2001);
  obs::StopTracing();
  const std::string json = obs::TraceToJson();
  EXPECT_NE(json.find("\"name\":\"sim/test-lane\""), std::string::npos);
  const std::vector<ParsedEvent> events = ParseTraceEvents(json);
  const ParsedEvent* request = FindByName(events, "request");
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->tid, 2001);
  EXPECT_DOUBLE_EQ(request->ts_us, 1000.0);
  EXPECT_DOUBLE_EQ(request->dur_us, 250.0);
}

TEST_F(ObsTraceExportTest, AccumulateSpanFeedsProfileWhileTracingOff) {
  // FusedEngine's per-step profile rides on this variant: it must time the
  // scope even when no trace is being recorded.
  double seconds = 0.0;
  {
    obs::TraceSpan span(std::string("engine/step"), obs::TraceCat::kEngine, &seconds);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sink = sink + i;
    }
  }
  EXPECT_GT(seconds, 0.0);
  EXPECT_EQ(obs::TraceEventCount(), 0u);
}

TEST_F(ObsTraceParallelTest, PoolWorkersRecordConcurrently) {
  constexpr int kTasks = 500;
  obs::StartTracing();
  {
    ThreadPool pool(4, "obs-test");
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([] { obs::TraceSpan span("work-item", obs::TraceCat::kOther); });
    }
    pool.WaitAll();
  }  // joins the workers: all rings quiesced before export
  obs::StopTracing();

  const std::string json = obs::TraceToJson();
  const std::vector<ParsedEvent> events = ParseTraceEvents(json);
  // Every task records its own span plus the pool's "pool/task" wrapper.
  EXPECT_EQ(CountByName(events, "work-item"), kTasks);
  EXPECT_EQ(CountByName(events, "pool/task"), kTasks);
  // Worker threads are attributed by name in the export metadata.
  EXPECT_NE(json.find("\"name\":\"obs-test-0\""), std::string::npos);
  // Spans from one worker never interleave incorrectly: within a tid, the
  // ring preserves completion order (end timestamps are non-decreasing).
  std::vector<ParsedEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ParsedEvent& a, const ParsedEvent& b) { return a.tid < b.tid; });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].tid == sorted[i - 1].tid) {
      EXPECT_GE(sorted[i].end_us(), sorted[i - 1].end_us());
    }
  }
}

TEST_F(ObsDisabledModeTest, RecordsNothingAndRegistersNoThread) {
  const int rings_before = obs::NumRegisteredTraceThreads();
  // A fresh thread recording disabled spans must not register a ring, record
  // an event, or touch the clock-derived state.
  std::thread t([] {
    for (int i = 0; i < 100; ++i) {
      obs::TraceSpan span("never-recorded", obs::TraceCat::kOther);
    }
  });
  t.join();
  EXPECT_EQ(obs::NumRegisteredTraceThreads(), rings_before);
  EXPECT_EQ(obs::TraceEventCount(), 0u);
  const std::string json = obs::TraceToJson();
  EXPECT_EQ(json.find("never-recorded"), std::string::npos);
}

TEST(MetricsCounterTest, IncrementAndSnapshot) {
  obs::Counter& c = obs::GetCounter("test.obs_counter");
  c.Reset();
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.Value(), 5);
  const std::string json = obs::MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"test.obs_counter\":5"), std::string::npos);
  c.Reset();
}

TEST(MetricsGaugeTest, SetOverwrites) {
  obs::Gauge& g = obs::GetGauge("test.obs_gauge");
  g.Set(2.5);
  g.Set(7.25);
  EXPECT_DOUBLE_EQ(g.Value(), 7.25);
  g.Reset();
}

TEST(MetricsHistogramTest, QuantilesMatchBruteForceWithinBucketWidth) {
  obs::Histogram h(obs::DefaultLatencyBucketsMs());
  std::mt19937 rng(1234);
  std::lognormal_distribution<double> dist(1.0, 1.5);
  std::vector<double> values;
  values.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());

  const std::vector<double>& bounds = h.bounds();
  for (double q : {0.0, 0.25, 0.50, 0.95, 0.99, 1.0}) {
    const double exact =
        values[static_cast<size_t>(q * static_cast<double>(values.size() - 1))];
    // The estimate interpolates inside the covering bucket, so its error is
    // bounded by that bucket's width.
    const size_t b = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), exact) - bounds.begin());
    const double lo = b == 0 ? h.Min() : bounds[b - 1];
    const double hi = b < bounds.size() ? bounds[b] : h.Max();
    EXPECT_NEAR(h.Quantile(q), exact, (hi - lo) + 1e-9) << "q=" << q;
  }
  EXPECT_EQ(h.Count(), 5000);
  EXPECT_DOUBLE_EQ(h.Min(), values.front());
  EXPECT_DOUBLE_EQ(h.Max(), values.back());
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(MetricsHistogramTest, SingleValueDistributionIsExact) {
  obs::Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 50; ++i) {
    h.Observe(42.0);
  }
  // Clamping to observed min/max makes degenerate distributions exact.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
}

TEST(MetricsHistogramTest, ConcurrentObserveKeepsTotals) {
  obs::Histogram& h = obs::GetHistogram("test.obs_parallel_hist", {1.0, 2.0, 4.0, 8.0});
  h.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>(t) + 0.5);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 3.5);
  EXPECT_DOUBLE_EQ(h.Sum(), kPerThread * (0.5 + 1.5 + 2.5 + 3.5));
  h.Reset();
}

TEST(MetricsRegistryTest, SnapshotIsWellFormedJson) {
  obs::GetCounter("test.obs_snapshot_counter").Increment();
  obs::GetHistogram("test.obs_snapshot_hist").Observe(1.25);
  const std::string json = obs::MetricsRegistry::Global().ToJson();
  // Structural sanity: balanced braces, the three sections, quantile keys.
  int depth = 0;
  for (char c : json) {
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(ObsTimingTest, MonotonicNowAdvances) {
  const int64_t a = MonotonicNowNs();
  const int64_t b = MonotonicNowNs();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

}  // namespace
}  // namespace gmorph
