# SARIF pipeline smoke: `gmorph_cli --verify --format=sarif` on a seeded-defect
# plan must (1) exit 1 like text mode, (2) emit a log that python's strict JSON
# parser accepts, and (3) carry exactly the rule ids the text renderer reports
# for the same file — the two formats are views of one analysis, not two
# analyses.
#
# Invoked by ctest as:
#   cmake -DCLI=<gmorph_cli> -DPLAN=<plan_buffer_overlap.plan> -DOUT_DIR=<dir>
#         -P run_sarif_smoke.cmake

set(SARIF "${OUT_DIR}/sarif_smoke.sarif")
file(REMOVE "${SARIF}")

execute_process(
  COMMAND "${CLI}" "--verify" "--format=sarif" "${PLAN}"
  RESULT_VARIABLE sarif_rc
  OUTPUT_VARIABLE sarif_out
  ERROR_VARIABLE sarif_err)
if(NOT sarif_rc EQUAL 1)
  message(FATAL_ERROR "--format=sarif on a defective plan exited ${sarif_rc} (want 1):\n${sarif_out}\n${sarif_err}")
endif()
file(WRITE "${SARIF}" "${sarif_out}")

execute_process(
  COMMAND "${CLI}" "--verify" "${PLAN}"
  RESULT_VARIABLE text_rc
  OUTPUT_VARIABLE text_out
  ERROR_VARIABLE text_err)
if(NOT text_rc EQUAL 1)
  message(FATAL_ERROR "text --verify on the same plan exited ${text_rc} (want 1):\n${text_out}\n${text_err}")
endif()

# SARIF must be valid JSON by an independent strict parser.
find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(
    COMMAND "${PYTHON3}" "-m" "json.tool" "${SARIF}"
    RESULT_VARIABLE json_rc
    OUTPUT_VARIABLE json_out
    ERROR_VARIABLE json_err)
  if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "python3 -m json.tool rejected the SARIF log:\n${json_err}")
  endif()
else()
  message(WARNING "python3 not found; skipping strict JSON validation")
endif()

if(NOT sarif_out MATCHES "\"version\": \"2.1.0\"")
  message(FATAL_ERROR "SARIF log lacks the 2.1.0 version marker:\n${sarif_out}")
endif()

# Every rule id the text mode printed must appear as a SARIF ruleId, and SARIF
# must not invent rule ids text mode never reported.
string(REGEX MATCHALL "\\[([a-z0-9_.]+)\\]" text_rules "${text_out}")
if(text_rules STREQUAL "")
  message(FATAL_ERROR "text mode reported no rule ids:\n${text_out}")
endif()
foreach(match ${text_rules})
  string(REGEX REPLACE "[][]" "" rule "${match}")
  if(NOT sarif_out MATCHES "\"ruleId\": \"${rule}\"")
    message(FATAL_ERROR "text mode fired ${rule} but the SARIF log has no such ruleId:\n${sarif_out}")
  endif()
endforeach()
string(REGEX MATCHALL "\"ruleId\": \"([a-z0-9_.]+)\"" sarif_rules "${sarif_out}")
foreach(match ${sarif_rules})
  string(REGEX REPLACE "\"ruleId\": \"([a-z0-9_.]+)\"" "\\1" rule "${match}")
  if(NOT text_out MATCHES "\\[${rule}\\]")
    message(FATAL_ERROR "SARIF reports ${rule} but text mode never fired it:\n${text_out}")
  endif()
endforeach()
