// Finite-difference gradient checks for every differentiable layer. Each case
// builds a small module + input and verifies a sample of input and parameter
// gradients against central differences.
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/nn/activations.h"
#include "src/nn/attention.h"
#include "src/nn/blocks.h"
#include "src/nn/conv2d.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"
#include "src/nn/norm.h"
#include "src/nn/pooling.h"
#include "src/nn/rescale.h"
#include "src/nn/sequential.h"
#include "src/nn/transformer_block.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

struct GradCase {
  std::string name;
  std::function<std::unique_ptr<Module>(Rng&)> make;
  Shape input_shape;  // includes batch
  float tolerance = 5e-2f;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, MatchesNumericGradient) {
  const GradCase& c = GetParam();
  Rng rng(99);
  std::unique_ptr<Module> module = c.make(rng);
  Tensor x = Tensor::RandomGaussian(c.input_shape, rng);
  testing::GradCheckModule(*module, x, c.tolerance, rng);
}

std::vector<GradCase> MakeCases() {
  std::vector<GradCase> cases;
  cases.push_back({"Linear",
                   [](Rng& rng) { return std::make_unique<Linear>(6, 4, rng); },
                   Shape{3, 6}});
  cases.push_back({"LinearNoBias",
                   [](Rng& rng) { return std::make_unique<Linear>(5, 3, rng, false); },
                   Shape{2, 5}});
  cases.push_back({"Linear3d",
                   [](Rng& rng) { return std::make_unique<Linear>(4, 4, rng); },
                   Shape{2, 3, 4}});
  cases.push_back({"ReLU", [](Rng&) { return std::make_unique<ReLU>(); }, Shape{4, 7}});
  cases.push_back({"GELU", [](Rng&) { return std::make_unique<GELU>(); }, Shape{4, 7}});
  cases.push_back({"Conv2d",
                   [](Rng& rng) { return std::make_unique<Conv2d>(2, 3, 3, 1, 1, rng); },
                   Shape{2, 2, 5, 5}});
  cases.push_back({"Conv2dStride2",
                   [](Rng& rng) { return std::make_unique<Conv2d>(2, 2, 3, 2, 1, rng); },
                   Shape{2, 2, 6, 6}});
  cases.push_back({"BatchNorm2d",
                   [](Rng&) { return std::make_unique<BatchNorm2d>(3); },
                   Shape{4, 3, 3, 3},
                   8e-2f});
  cases.push_back({"LayerNorm", [](Rng&) { return std::make_unique<LayerNorm>(6); },
                   Shape{3, 2, 6}, 8e-2f});
  cases.push_back({"MaxPool2d", [](Rng&) { return std::make_unique<MaxPool2d>(2, 2); },
                   Shape{2, 2, 4, 4}});
  cases.push_back({"GlobalAvgPool", [](Rng&) { return std::make_unique<GlobalAvgPool2d>(); },
                   Shape{2, 3, 4, 4}});
  cases.push_back({"MeanPoolTokens", [](Rng&) { return std::make_unique<MeanPoolTokens>(); },
                   Shape{2, 5, 3}});
  cases.push_back({"MHSA",
                   [](Rng& rng) { return std::make_unique<MultiHeadSelfAttention>(8, 2, rng); },
                   Shape{2, 4, 8},
                   8e-2f});
  cases.push_back({"TransformerBlock",
                   [](Rng& rng) { return std::make_unique<TransformerBlock>(8, 2, 2, rng); },
                   Shape{2, 4, 8},
                   1e-1f});
  cases.push_back({"ConvBlockNoBN",
                   [](Rng& rng) {
                     return std::make_unique<ConvBlock>(2, 3, 3, 1, 1, false, rng);
                   },
                   Shape{2, 2, 4, 4}});
  cases.push_back({"ConvBlockBN",
                   [](Rng& rng) {
                     return std::make_unique<ConvBlock>(2, 3, 3, 1, 1, true, rng);
                   },
                   Shape{3, 2, 4, 4},
                   1e-1f});
  cases.push_back({"ResidualBlockIdentity",
                   [](Rng& rng) { return std::make_unique<ResidualBlock>(3, 3, 1, rng); },
                   Shape{2, 3, 4, 4},
                   1.5e-1f});
  cases.push_back({"ResidualBlockProjection",
                   [](Rng& rng) { return std::make_unique<ResidualBlock>(2, 4, 2, rng); },
                   Shape{2, 2, 6, 6},
                   1.5e-1f});
  cases.push_back({"RescaleSpatialChannel",
                   [](Rng& rng) {
                     return std::make_unique<Rescale>(Shape{2, 4, 4}, Shape{3, 6, 6}, rng);
                   },
                   Shape{2, 2, 4, 4}});
  cases.push_back({"RescaleTokens",
                   [](Rng& rng) {
                     return std::make_unique<Rescale>(Shape{4, 3}, Shape{6, 5}, rng);
                   },
                   Shape{2, 4, 3}});
  cases.push_back({"PatchEmbed",
                   [](Rng& rng) { return std::make_unique<PatchEmbed>(2, 8, 4, 6, rng); },
                   Shape{2, 2, 8, 8}});
  cases.push_back({"Sequential",
                   [](Rng& rng) {
                     auto seq = std::make_unique<Sequential>();
                     seq->Append(std::make_unique<Linear>(5, 8, rng));
                     seq->Append(std::make_unique<ReLU>());
                     seq->Append(std::make_unique<Linear>(8, 3, rng));
                     return seq;
                   },
                   Shape{3, 5}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLayers, GradCheckTest, ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<GradCase>& info) {
                           return info.param.name;
                         });

// TokenEmbedding has discrete inputs; check parameter gradients only.
TEST(TokenEmbeddingGrad, TableAndPositionGradients) {
  Rng rng(3);
  TokenEmbedding embed(6, 4, 5, rng);
  Tensor ids = Tensor::FromVector(Shape{2, 4}, {0, 1, 2, 3, 5, 5, 1, 0});
  Tensor y = embed.Forward(ids, true);
  Tensor probe = Tensor::RandomGaussian(y.shape(), rng);
  embed.ZeroGrad();
  embed.Backward(probe);
  auto params = embed.Parameters();
  const float eps = 1e-2f;
  for (Parameter* p : params) {
    Tensor analytic = p->grad.Clone();
    for (int trial = 0; trial < 5; ++trial) {
      const int64_t i = rng.NextInt(static_cast<int>(p->value.size()));
      const float saved = p->value.at(i);
      p->value.at(i) = saved + eps;
      Tensor yp = embed.Forward(ids, true);
      p->value.at(i) = saved - eps;
      Tensor ym = embed.Forward(ids, true);
      p->value.at(i) = saved;
      float up = 0.0f;
      float dn = 0.0f;
      for (int64_t j = 0; j < yp.size(); ++j) {
        up += yp.at(j) * probe.at(j);
        dn += ym.at(j) * probe.at(j);
      }
      EXPECT_NEAR(analytic.at(i), (up - dn) / (2 * eps), 5e-2f) << p->name;
    }
  }
}

}  // namespace
}  // namespace gmorph
