# End-to-end roofline-profile smoke: `gmorph_cli --profile` must probe (or
# load) the machine ceilings, run the fused engine under the step profiler,
# and emit the roofline attribution both as the text table and as JSON.
#
# Invoked by ctest as:
#   cmake -DCLI=<gmorph_cli> -DCFG=<cli_trace_smoke.cfg> -DOUT_DIR=<dir>
#         -P run_profile_smoke.cmake
#
# Checks:
#   - the CLI exits 0 and the report carries the ceilings line, the per-step
#     table header, and the hot-step ranking,
#   - the counters line states either path explicitly (available / unavailable
#     with a reason) — and GMORPH_NO_PERF=1 forces the unavailable path in a
#     fresh process,
#   - the machine-ceiling artifact it wrote passes `gmorph_cli --verify`,
#   - the second run reuses the cached ceilings instead of re-probing,
#   - the JSON export parses under python3's strict parser (when available).

set(SMOKE_CFG "${OUT_DIR}/profile_smoke.cfg")
set(MACHINE_DB "${OUT_DIR}/profile_smoke.machine")
set(PROFILE_JSON "${OUT_DIR}/profile_smoke.json")
file(REMOVE "${SMOKE_CFG}" "${MACHINE_DB}" "${PROFILE_JSON}")

# The shared tiny-search config, plus the profile destinations (the base
# config does not set profile_* or machine_db keys, so appending is safe).
file(READ "${CFG}" base_cfg)
file(WRITE "${SMOKE_CFG}" "\
${base_cfg}
profile_runs = 3
machine_db = ${MACHINE_DB}
profile_json = ${PROFILE_JSON}
")

execute_process(
  COMMAND "${CLI}" "--profile" "${SMOKE_CFG}"
  RESULT_VARIABLE profile_rc
  OUTPUT_VARIABLE profile_out
  ERROR_VARIABLE profile_err)
if(NOT profile_rc EQUAL 0)
  message(FATAL_ERROR "--profile exited ${profile_rc}:\n${profile_out}\n${profile_err}")
endif()
foreach(needle "machine ceilings" "ridge" "GFLOP/s" "bound" "hot steps:")
  string(FIND "${profile_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "--profile report is missing '${needle}':\n${profile_out}")
  endif()
endforeach()
# The counters line must state which path ran — never silently omit it.
if(NOT profile_out MATCHES "counters: (available|unavailable \\()")
  message(FATAL_ERROR "--profile did not report the counters path:\n${profile_out}")
endif()

# The ceilings artifact must exist and pass the strict machine.* linter.
if(NOT EXISTS "${MACHINE_DB}")
  message(FATAL_ERROR "--profile did not write ${MACHINE_DB}")
endif()
execute_process(
  COMMAND "${CLI}" "--verify" "${MACHINE_DB}"
  RESULT_VARIABLE verify_rc
  OUTPUT_VARIABLE verify_out
  ERROR_VARIABLE verify_err)
if(NOT verify_rc EQUAL 0)
  message(FATAL_ERROR "--verify rejected ${MACHINE_DB} (${verify_rc}):\n${verify_out}\n${verify_err}")
endif()

# Warm rerun: the fingerprint matches this build, so the ceilings must come
# from the cache, not a re-probe.
execute_process(
  COMMAND "${CLI}" "--profile" "${SMOKE_CFG}"
  RESULT_VARIABLE warm_rc
  OUTPUT_VARIABLE warm_out
  ERROR_VARIABLE warm_err)
if(NOT warm_rc EQUAL 0)
  message(FATAL_ERROR "warm --profile exited ${warm_rc}:\n${warm_out}\n${warm_err}")
endif()
string(FIND "${warm_out}" "cached from" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "warm --profile re-probed instead of using the cache:\n${warm_out}")
endif()

# GMORPH_NO_PERF must force the graceful-degradation path in a fresh process.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "GMORPH_NO_PERF=1"
          "${CLI}" "--profile" "${SMOKE_CFG}"
  RESULT_VARIABLE noperf_rc
  OUTPUT_VARIABLE noperf_out
  ERROR_VARIABLE noperf_err)
if(NOT noperf_rc EQUAL 0)
  message(FATAL_ERROR "--profile under GMORPH_NO_PERF exited ${noperf_rc}:\n${noperf_err}")
endif()
string(FIND "${noperf_out}" "counters: unavailable" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "GMORPH_NO_PERF did not force the fallback:\n${noperf_out}")
endif()

# The JSON export must satisfy a strict parser.
if(NOT EXISTS "${PROFILE_JSON}")
  message(FATAL_ERROR "--profile did not write ${PROFILE_JSON}")
endif()
find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(COMMAND "${PYTHON3}" -m json.tool "${PROFILE_JSON}"
                  RESULT_VARIABLE json_rc OUTPUT_QUIET ERROR_VARIABLE json_err)
  if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "${PROFILE_JSON} is not valid JSON:\n${json_err}")
  endif()
else()
  message(STATUS "python3 not found; skipping strict JSON validation")
endif()
