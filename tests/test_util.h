// Shared helpers for the GMorph test suite.
#ifndef GMORPH_TESTS_TEST_UTIL_H_
#define GMORPH_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/nn/module.h"
#include "src/tensor/tensor.h"

namespace gmorph::testing {

// Max elementwise absolute difference.
inline float MaxDiff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape().dims(), b.shape().dims());
  float m = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.at(i) - b.at(i)));
  }
  return m;
}

// Central-difference gradient check for a module: verifies both the input
// gradient and every parameter gradient of `module` on input `x` against
// numeric differentiation of the scalar loss sum(output * probe).
// `tolerance` is the max allowed absolute error.
void GradCheckModule(Module& module, const Tensor& x, float tolerance, Rng& rng,
                     float epsilon = 1e-3f);

}  // namespace gmorph::testing

#endif  // GMORPH_TESTS_TEST_UTIL_H_
