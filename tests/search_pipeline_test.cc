// Tests for the staged search pipeline: the evaluation cache, search
// checkpoints, kill-and-resume, and parallel-round determinism.
//
// Searches here optimize FLOPs (OptimizeMetric::kFlops): under the FLOPs
// metric every trace field except wall-clock timings is fully deterministic
// (bitwise-deterministic kernels, per-candidate RNG streams, no RNG in
// fine-tuning), so the tests can compare runs field-for-field.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/eval_cache.h"
#include "src/core/gmorph.h"
#include "src/core/model_parser.h"
#include "src/core/search_checkpoint.h"
#include "src/data/benchmarks.h"
#include "src/data/teacher.h"
#include "src/models/zoo.h"

namespace gmorph {
namespace {

AbsGraph TinyGraph(int classes) {
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = classes;
  return ParseModelSpecs({MakeVgg11(opts), MakeVgg11(opts)});
}

// Fresh per-test scratch directory under the gtest temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(::testing::TempDir() + "gmorph_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

struct Prepared {
  BenchmarkDef def;
  std::vector<std::unique_ptr<TaskModel>> teachers;
  std::vector<TaskModel*> ptrs;
};

Prepared Prepare(int bench_index, uint64_t seed) {
  BenchmarkScale scale;
  scale.train_size = 48;
  scale.test_size = 32;
  scale.cnn_width = 4;
  Prepared p;
  p.def = MakeBenchmark(bench_index, scale, seed);
  Rng rng(seed);
  for (size_t t = 0; t < p.def.tasks.size(); ++t) {
    p.teachers.push_back(std::make_unique<TaskModel>(p.def.tasks[t].model, rng));
    TeacherTrainOptions topts;
    topts.epochs = 2;
    TrainTeacher(*p.teachers.back(), p.def.train, p.def.test, t, topts);
    p.ptrs.push_back(p.teachers.back().get());
  }
  return p;
}

GMorphOptions FastFlopsOptions() {
  GMorphOptions o;
  o.iterations = 4;
  o.accuracy_drop_threshold = 0.10;
  o.metric = OptimizeMetric::kFlops;
  o.finetune.max_epochs = 2;
  o.finetune.eval_interval = 1;
  o.latency.measured_runs = 1;
  o.seed = 3;
  return o;
}

// Compares every deterministic trace field (all but the wall-clock timings).
// `compare_cache_flags` is off when one run had a warm cache: hit flags and
// the derived counters legitimately differ there.
void ExpectTraceEqual(const std::vector<IterationRecord>& a,
                      const std::vector<IterationRecord>& b, bool compare_cache_flags) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("trace index " + std::to_string(i));
    EXPECT_EQ(a[i].iteration, b[i].iteration);
    EXPECT_EQ(a[i].candidate_flops, b[i].candidate_flops);
    EXPECT_EQ(a[i].accuracy_drop, b[i].accuracy_drop);
    EXPECT_EQ(a[i].met_target, b[i].met_target);
    EXPECT_EQ(a[i].filtered_by_rule, b[i].filtered_by_rule);
    EXPECT_EQ(a[i].terminated_early, b[i].terminated_early);
    EXPECT_EQ(a[i].duplicate, b[i].duplicate);
    EXPECT_EQ(a[i].rejected_by_verifier, b[i].rejected_by_verifier);
    EXPECT_EQ(a[i].best_flops, b[i].best_flops);
    if (compare_cache_flags) {
      EXPECT_EQ(a[i].cache_hit, b[i].cache_hit);
    }
  }
}

TEST(EvalCacheTest, StoreLookupRoundtrip) {
  ScratchDir dir("evalcache_roundtrip");
  AbsGraph trained = TinyGraph(2);
  const std::string fp = trained.Fingerprint();

  EvaluationCache::Entry entry;
  entry.met_target = true;
  entry.terminated_early = false;
  entry.epochs_run = 3;
  entry.accuracy_drop = 0.01625;
  entry.latency_ms = 1.75;
  entry.flops = 123456;
  entry.finetune_seconds = 2.5;
  entry.task_scores = {0.875, 0.9375};

  {
    EvaluationCache cache(dir.path(), /*options_hash=*/0xabcdef01u);
    EXPECT_FALSE(cache.Lookup(fp).has_value());
    cache.Store(fp, entry, &trained);
    auto hit = cache.Lookup(fp);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->entry.accuracy_drop, entry.accuracy_drop);
    ASSERT_TRUE(hit->trained_graph.has_value());
    EXPECT_EQ(hit->trained_graph->Fingerprint(), fp);
  }

  // A fresh instance reloads the persisted index and the trained graph.
  EvaluationCache reloaded(dir.path(), /*options_hash=*/0xabcdef01u);
  EXPECT_TRUE(reloaded.load_diagnostics().ok());
  EXPECT_EQ(reloaded.size(), 1u);
  auto hit = reloaded.Lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->entry.met_target);
  EXPECT_EQ(hit->entry.epochs_run, 3);
  EXPECT_EQ(hit->entry.accuracy_drop, entry.accuracy_drop);
  EXPECT_EQ(hit->entry.latency_ms, entry.latency_ms);
  EXPECT_EQ(hit->entry.flops, entry.flops);
  EXPECT_EQ(hit->entry.finetune_seconds, entry.finetune_seconds);
  ASSERT_EQ(hit->entry.task_scores.size(), 2u);
  EXPECT_EQ(hit->entry.task_scores[0], 0.875);
  EXPECT_EQ(hit->entry.task_scores[1], 0.9375);
  ASSERT_TRUE(hit->trained_graph.has_value());
  EXPECT_EQ(hit->trained_graph->Fingerprint(), fp);

  // A different options hash is a different namespace: no entries visible.
  EvaluationCache other(dir.path(), /*options_hash=*/0x1111u);
  EXPECT_EQ(other.size(), 0u);
  EXPECT_FALSE(other.Lookup(fp).has_value());

  // Non-elite entries persist without a trained graph.
  EvaluationCache::Entry miss = entry;
  miss.met_target = false;
  miss.task_scores.clear();
  AbsGraph other_graph = TinyGraph(3);
  {
    EvaluationCache cache(dir.path(), 0xabcdef01u);
    cache.Store(other_graph.Fingerprint(), miss, nullptr);
  }
  EvaluationCache again(dir.path(), 0xabcdef01u);
  auto miss_hit = again.Lookup(other_graph.Fingerprint());
  ASSERT_TRUE(miss_hit.has_value());
  EXPECT_FALSE(miss_hit->entry.met_target);
  EXPECT_FALSE(miss_hit->trained_graph.has_value());

  // The on-disk index itself lints clean.
  DiagnosticList lint = VerifyEvalCacheFile(again.index_path());
  EXPECT_TRUE(lint.ok()) << lint.ToString();
  EXPECT_TRUE(lint.HasRule("cache.summary"));
}

TEST(EvalCacheTest, MissingTrainedGraphDegradesToMiss) {
  ScratchDir dir("evalcache_missing_graph");
  AbsGraph trained = TinyGraph(2);
  const std::string fp = trained.Fingerprint();
  EvaluationCache::Entry entry;
  entry.met_target = true;
  {
    EvaluationCache cache(dir.path(), 7);
    cache.Store(fp, entry, &trained);
    // Delete the trained graph behind the cache's back.
    auto hit = cache.Lookup(fp);
    ASSERT_TRUE(hit.has_value());
  }
  for (const auto& f : std::filesystem::directory_iterator(dir.path())) {
    if (f.path().extension() == ".gmorph") {
      std::filesystem::remove(f.path());
    }
  }
  EvaluationCache cache(dir.path(), 7);
  EXPECT_FALSE(cache.Lookup(fp).has_value());
}

TEST(EvalCacheTest, CorruptFileProducesDiagnostics) {
  ScratchDir dir("evalcache_corrupt");
  const std::string path = dir.File("evalcache_bad.txt");
  {
    std::ofstream out(path);
    out << "gmorph-evalcache v1\n"
        << "options zzzz-not-hex\n"
        << "entry met=1 early=0 epochs=bogus\n"
        << "what is this line\n";
  }
  DiagnosticList diags = VerifyEvalCacheFile(path);
  EXPECT_FALSE(diags.ok());
  EXPECT_TRUE(diags.HasRule("cache.options")) << diags.ToString();
  EXPECT_TRUE(diags.HasRule("cache.entry")) << diags.ToString();

  // Unknown version and missing header have their own rules.
  const std::string v2 = dir.File("evalcache_v2.txt");
  { std::ofstream(v2) << "gmorph-evalcache v2\n"; }
  EXPECT_TRUE(VerifyEvalCacheFile(v2).HasRule("cache.version"));
  const std::string noheader = dir.File("not_a_cache.txt");
  { std::ofstream(noheader) << "hello\n"; }
  EXPECT_TRUE(VerifyEvalCacheFile(noheader).HasRule("cache.header"));
  EXPECT_TRUE(VerifyEvalCacheFile(dir.File("absent.txt")).HasRule("cache.open"));

  // The constructor survives a corrupt index: diagnostics recorded, usable.
  {
    std::ofstream out(path, std::ios::app);
    out << "entry met=0 early=0 epochs=1 flops=10 drop=0 lat=0 ftsec=0 scores=- graph=- fp=ok\n";
  }
  // Rename to the index path the cache expects for options hash 0x2a.
  const std::string index = dir.File("evalcache_000000000000002a.txt");
  std::filesystem::copy_file(path, index);
  EvaluationCache cache(dir.path(), 0x2a);
  EXPECT_FALSE(cache.load_diagnostics().ok());
  EXPECT_EQ(cache.size(), 1u);  // the good entry still loaded
  EXPECT_TRUE(cache.Lookup("ok").has_value());
}

TEST(EvalCacheTest, SecondSearchRunHitsCache) {
  ScratchDir dir("evalcache_search");
  Prepared p = Prepare(1, 21);
  GMorphOptions opts = FastFlopsOptions();
  opts.use_eval_cache = true;
  opts.cache_dir = dir.path();

  GMorph first(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r1 = first.Run();
  EXPECT_EQ(r1.cache_hits, 0);
  ASSERT_GT(r1.candidates_finetuned, 0);

  // Run 2 over the same options samples the identical candidate stream; every
  // previously fine-tuned candidate must be served from the cache.
  GMorph second(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r2 = second.Run();
  EXPECT_EQ(r2.cache_hits, r1.candidates_finetuned);
  EXPECT_EQ(r2.candidates_finetuned, 0);
  EXPECT_EQ(r2.stage_seconds.finetune, 0.0);
  // The warm run reaches the identical final state.
  EXPECT_EQ(r2.best_flops, r1.best_flops);
  EXPECT_EQ(r2.found_improvement, r1.found_improvement);
  EXPECT_EQ(r2.best_graph.Fingerprint(), r1.best_graph.Fingerprint());
  ExpectTraceEqual(r1.trace, r2.trace, /*compare_cache_flags=*/false);
  for (const IterationRecord& rec : r2.trace) {
    EXPECT_EQ(rec.finetune_seconds, 0.0);
  }
  // And the warm search is cheaper end to end.
  EXPECT_LT(r2.search_seconds, r1.search_seconds);

  // The index written by the search lints clean.
  EvalOptions eval;
  eval.finetune = opts.finetune;
  eval.finetune.target_drop = opts.accuracy_drop_threshold;
  eval.finetune.predictive_termination = opts.predictive_termination;
  eval.latency = opts.latency;
  eval.rule_based_filtering = opts.rule_based_filtering;
  char index_name[64];
  std::snprintf(index_name, sizeof(index_name), "evalcache_%016llx.txt",
                static_cast<unsigned long long>(HashEvalOptions(eval)));
  DiagnosticList lint = VerifyEvalCacheFile(dir.File(index_name));
  EXPECT_TRUE(lint.ok()) << lint.ToString();
}

SearchCheckpoint MakeSyntheticCheckpoint() {
  SearchCheckpoint ckpt;
  ckpt.options_hash = 0xfeedface12345678ull;
  ckpt.next_iteration = 7;
  ckpt.elapsed_seconds = 12.5;
  ckpt.original_latency_ms = 3.25;
  ckpt.original_flops = 1000000;
  ckpt.teacher_scores = {0.75, 0.8125};
  ckpt.found_improvement = true;
  ckpt.best_graph = TinyGraph(2);
  ckpt.best_latency_ms = 2.5;
  ckpt.best_flops = 800000;
  ckpt.best_cost = 800000.0;
  ckpt.best_task_scores = {0.75, 0.78125};
  IterationRecord rec;
  rec.iteration = 1;
  rec.candidate_flops = 900000;
  rec.accuracy_drop = 0.03125;
  rec.met_target = true;
  rec.cache_hit = true;
  rec.stages.sample = 0.125;
  rec.stages.finetune = 1.5;
  ckpt.trace = {rec};
  ckpt.candidates_finetuned = 4;
  ckpt.candidates_filtered = 2;
  ckpt.candidates_rejected = 1;
  ckpt.cache_hits = 3;
  ckpt.stage_seconds.verify = 0.25;
  ckpt.fingerprints = {TinyGraph(2).Fingerprint(), TinyGraph(3).Fingerprint()};
  ckpt.elites.push_back({TinyGraph(3), 850000.0, 0.0625});
  CapacitySignature sig;
  sig.total = 100;
  sig.shared_total = 20;
  sig.per_task_total = {50, 70};
  sig.per_task_specific = {30, 50};
  ckpt.non_promising = {sig};
  ckpt.policy.iteration = 7;
  ckpt.policy.last_drop = 0.046875;
  return ckpt;
}

TEST(CheckpointTest, SaveLoadRoundtrip) {
  ScratchDir dir("ckpt_roundtrip");
  const std::string path = dir.File("search.ckpt");
  SearchCheckpoint ckpt = MakeSyntheticCheckpoint();
  ASSERT_TRUE(SaveCheckpoint(path, ckpt));

  CheckpointLoadResult loaded = TryLoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.diagnostics.ToString();
  const SearchCheckpoint& c = *loaded.checkpoint;
  EXPECT_EQ(c.options_hash, ckpt.options_hash);
  EXPECT_EQ(c.next_iteration, 7);
  EXPECT_EQ(c.elapsed_seconds, 12.5);
  EXPECT_EQ(c.original_latency_ms, 3.25);
  EXPECT_EQ(c.original_flops, 1000000);
  EXPECT_EQ(c.teacher_scores, ckpt.teacher_scores);
  EXPECT_TRUE(c.found_improvement);
  EXPECT_EQ(c.best_graph.Fingerprint(), ckpt.best_graph.Fingerprint());
  EXPECT_EQ(c.best_latency_ms, 2.5);
  EXPECT_EQ(c.best_flops, 800000);
  EXPECT_EQ(c.best_cost, 800000.0);
  EXPECT_EQ(c.best_task_scores, ckpt.best_task_scores);
  ASSERT_EQ(c.trace.size(), 1u);
  EXPECT_EQ(c.trace[0].iteration, 1);
  EXPECT_EQ(c.trace[0].candidate_flops, 900000);
  EXPECT_EQ(c.trace[0].accuracy_drop, 0.03125);
  EXPECT_TRUE(c.trace[0].met_target);
  EXPECT_TRUE(c.trace[0].cache_hit);
  EXPECT_EQ(c.trace[0].stages.sample, 0.125);
  EXPECT_EQ(c.trace[0].stages.finetune, 1.5);
  EXPECT_EQ(c.candidates_finetuned, 4);
  EXPECT_EQ(c.candidates_filtered, 2);
  EXPECT_EQ(c.candidates_rejected, 1);
  EXPECT_EQ(c.cache_hits, 3);
  EXPECT_EQ(c.stage_seconds.verify, 0.25);
  EXPECT_EQ(c.fingerprints, ckpt.fingerprints);
  ASSERT_EQ(c.elites.size(), 1u);
  EXPECT_EQ(c.elites[0].graph.Fingerprint(), ckpt.elites[0].graph.Fingerprint());
  EXPECT_EQ(c.elites[0].cost, 850000.0);
  EXPECT_EQ(c.elites[0].accuracy_drop, 0.0625);
  ASSERT_EQ(c.non_promising.size(), 1u);
  EXPECT_EQ(c.non_promising[0].total, 100);
  EXPECT_EQ(c.non_promising[0].per_task_total, ckpt.non_promising[0].per_task_total);
  EXPECT_EQ(c.policy.iteration, 7);
  EXPECT_EQ(c.policy.last_drop, 0.046875);

  // The lint path reports the clean summary note.
  DiagnosticList lint = VerifyCheckpointFile(path);
  EXPECT_TRUE(lint.ok()) << lint.ToString();
  EXPECT_TRUE(lint.HasRule("ckpt.summary"));

  // Saving again overwrites atomically; no stale .tmp file survives.
  ASSERT_TRUE(SaveCheckpoint(path, ckpt));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(CheckpointTest, CorruptFileDiagnostics) {
  ScratchDir dir("ckpt_corrupt");
  EXPECT_TRUE(TryLoadCheckpoint(dir.File("absent.ckpt")).diagnostics.HasRule("ckpt.open"));

  const std::string bad_header = dir.File("bad_header.ckpt");
  { std::ofstream(bad_header) << "not a checkpoint\n"; }
  EXPECT_TRUE(TryLoadCheckpoint(bad_header).diagnostics.HasRule("ckpt.magic"));

  const std::string bad_version = dir.File("bad_version.ckpt");
  { std::ofstream(bad_version) << "gmorph-checkpoint v99\n"; }
  EXPECT_TRUE(TryLoadCheckpoint(bad_version).diagnostics.HasRule("ckpt.version"));

  const std::string truncated = dir.File("truncated.ckpt");
  {
    std::ofstream out(truncated, std::ios::binary);
    out << "gmorph-checkpoint v1\n";
    const uint64_t hash = 42;
    out.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
  }
  CheckpointLoadResult r = TryLoadCheckpoint(truncated);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.diagnostics.HasRule("ckpt.truncated")) << r.diagnostics.ToString();

  // A full checkpoint with flipped payload bytes must fail with a bounds or
  // truncation diagnostic, never crash or allocate absurdly.
  const std::string mangled = dir.File("mangled.ckpt");
  ASSERT_TRUE(SaveCheckpoint(mangled, MakeSyntheticCheckpoint()));
  {
    std::fstream f(mangled, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    const char junk[8] = {'\x7f', '\x7f', '\x7f', '\x7f', '\x7f', '\x7f', '\x7f', '\x7f'};
    f.write(junk, sizeof(junk));
  }
  CheckpointLoadResult m = TryLoadCheckpoint(mangled);
  EXPECT_FALSE(m.ok());
  EXPECT_FALSE(m.diagnostics.ok());
}

TEST(ResumeTest, KillAndResumeMatchesUninterrupted) {
  ScratchDir dir("resume");
  Prepared p = Prepare(1, 23);

  // Reference: one uninterrupted 6-iteration search.
  GMorphOptions full_opts = FastFlopsOptions();
  full_opts.iterations = 6;
  GMorph full(p.ptrs, &p.def.train, &p.def.test, full_opts);
  GMorphResult r_full = full.Run();

  // "Killed" run: same search, budget exhausted after 3 iterations, final
  // checkpoint written. (iterations is excluded from the options hash, so the
  // checkpoint resumes under the larger budget.)
  GMorphOptions half_opts = full_opts;
  half_opts.iterations = 3;
  half_opts.checkpoint_path = dir.File("search.ckpt");
  GMorph half(p.ptrs, &p.def.train, &p.def.test, half_opts);
  GMorphResult r_half = half.Run();
  EXPECT_EQ(r_half.checkpoints_written, 1);

  CheckpointLoadResult loaded = TryLoadCheckpoint(half_opts.checkpoint_path);
  ASSERT_TRUE(loaded.ok()) << loaded.diagnostics.ToString();
  EXPECT_EQ(loaded.checkpoint->next_iteration, 3);
  EXPECT_EQ(loaded.checkpoint->options_hash, SearchOptionsHash(full_opts));

  // Resume under the full budget: the result must match the uninterrupted
  // run on every deterministic field.
  GMorphOptions resume_opts = full_opts;
  resume_opts.checkpoint_path.clear();
  GMorph resumed(p.ptrs, &p.def.train, &p.def.test, resume_opts);
  GMorphResult r_resumed = resumed.Resume(*loaded.checkpoint);

  ExpectTraceEqual(r_full.trace, r_resumed.trace, /*compare_cache_flags=*/true);
  EXPECT_EQ(r_resumed.found_improvement, r_full.found_improvement);
  EXPECT_EQ(r_resumed.best_flops, r_full.best_flops);
  EXPECT_EQ(r_resumed.original_flops, r_full.original_flops);
  EXPECT_EQ(r_resumed.best_graph.Fingerprint(), r_full.best_graph.Fingerprint());
  EXPECT_EQ(r_resumed.candidates_finetuned, r_full.candidates_finetuned);
  EXPECT_EQ(r_resumed.candidates_filtered, r_full.candidates_filtered);
  EXPECT_EQ(r_resumed.candidates_rejected, r_full.candidates_rejected);
  EXPECT_EQ(r_resumed.best_task_scores, r_full.best_task_scores);
}

TEST(ResumeTest, PeriodicCheckpointsAreWritten) {
  ScratchDir dir("periodic_ckpt");
  Prepared p = Prepare(1, 25);
  GMorphOptions opts = FastFlopsOptions();
  opts.iterations = 6;
  opts.checkpoint_path = dir.File("periodic.ckpt");
  opts.checkpoint_every = 2;
  GMorph gmorph(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r = gmorph.Run();
  // Periodic at iterations 2 and 4 plus the final write at 6.
  EXPECT_EQ(r.checkpoints_written, 3);
  CheckpointLoadResult loaded = TryLoadCheckpoint(opts.checkpoint_path);
  ASSERT_TRUE(loaded.ok()) << loaded.diagnostics.ToString();
  EXPECT_EQ(loaded.checkpoint->next_iteration, 6);
  EXPECT_EQ(loaded.checkpoint->trace.size(), 6u);
}

TEST(ResumeTest, OptionsHashGuardsSemanticOptions) {
  GMorphOptions a = FastFlopsOptions();
  GMorphOptions b = a;
  // Budget/execution knobs do not change the hash...
  b.iterations = 100;
  b.num_threads = 8;
  b.verbose = true;
  b.use_eval_cache = true;
  b.checkpoint_path = "x.ckpt";
  b.checkpoint_every = 5;
  EXPECT_EQ(SearchOptionsHash(a), SearchOptionsHash(b));
  // ...semantic options do.
  GMorphOptions c = a;
  c.seed = a.seed + 1;
  EXPECT_NE(SearchOptionsHash(a), SearchOptionsHash(c));
  GMorphOptions d = a;
  d.accuracy_drop_threshold = 0.05;
  EXPECT_NE(SearchOptionsHash(a), SearchOptionsHash(d));
  GMorphOptions e = a;
  e.parallel_candidates = 4;
  EXPECT_NE(SearchOptionsHash(a), SearchOptionsHash(e));
  GMorphOptions f = a;
  f.finetune.max_epochs += 1;
  EXPECT_NE(SearchOptionsHash(a), SearchOptionsHash(f));
}

TEST(SearchParallelDeterminismTest, ParallelRoundsMatchSerialBitForBit) {
  Prepared p = Prepare(1, 27);
  GMorphOptions opts = FastFlopsOptions();
  opts.iterations = 8;
  opts.parallel_candidates = 4;

  opts.num_threads = 1;
  GMorph serial(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r_serial = serial.Run();

  opts.num_threads = 4;
  GMorph parallel(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r_parallel = parallel.Run();

  ExpectTraceEqual(r_serial.trace, r_parallel.trace, /*compare_cache_flags=*/true);
  EXPECT_EQ(r_parallel.best_flops, r_serial.best_flops);
  EXPECT_EQ(r_parallel.found_improvement, r_serial.found_improvement);
  EXPECT_EQ(r_parallel.best_graph.Fingerprint(), r_serial.best_graph.Fingerprint());
  EXPECT_EQ(r_parallel.candidates_finetuned, r_serial.candidates_finetuned);
  EXPECT_EQ(r_parallel.candidates_filtered, r_serial.candidates_filtered);
  EXPECT_EQ(r_parallel.candidates_rejected, r_serial.candidates_rejected);
  EXPECT_EQ(r_parallel.best_task_scores, r_serial.best_task_scores);
  // The accuracy drops must agree bit-for-bit, not approximately: fine-tuning
  // is RNG-free and the kernels are bitwise thread-deterministic.
  ASSERT_EQ(r_parallel.trace.size(), r_serial.trace.size());
}

TEST(SearchStageAccountingTest, StageSecondsCoverTheSearch) {
  Prepared p = Prepare(1, 29);
  GMorphOptions opts = FastFlopsOptions();
  GMorph gmorph(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r = gmorph.Run();
  StageSeconds accumulated;
  for (const IterationRecord& rec : r.trace) {
    accumulated.Accumulate(rec.stages);
  }
  EXPECT_EQ(accumulated.Total(), r.stage_seconds.Total());
  EXPECT_GT(r.stage_seconds.Total(), 0.0);
  if (r.candidates_finetuned > 0) {
    EXPECT_GT(r.stage_seconds.finetune, 0.0);
    EXPECT_GT(r.stage_seconds.profile, 0.0);
    EXPECT_GT(r.stage_seconds.verify, 0.0);
  }
  EXPECT_GT(r.stage_seconds.sample, 0.0);
}

}  // namespace
}  // namespace gmorph
