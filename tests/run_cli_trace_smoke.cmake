# Smoke test for the observability surface: runs a tiny gmorph_cli search with
# GMORPH_TRACE / GMORPH_METRICS set and validates the exported files.
#
# Invoked by ctest as:
#   cmake -DCLI=<gmorph_cli> -DCFG=<cli_trace_smoke.cfg> -DOUT_DIR=<dir>
#         -P run_cli_trace_smoke.cmake
#
# Checks:
#   - the CLI exits 0 with both env vars set,
#   - the trace contains the span taxonomy the acceptance criteria name
#     (search/iteration -> eval stages -> engine-category node spans) plus
#     thread_name metadata for the named search pool workers,
#   - both files parse as JSON (python3 -m json.tool, when python3 exists),
#   - the metrics snapshot carries the search counters.

set(TRACE_FILE "${OUT_DIR}/cli_trace_smoke.json")
set(METRICS_FILE "${OUT_DIR}/cli_metrics_smoke.json")
file(REMOVE "${TRACE_FILE}" "${METRICS_FILE}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          "GMORPH_TRACE=${TRACE_FILE}" "GMORPH_METRICS=${METRICS_FILE}"
          "${CLI}" "${CFG}"
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "gmorph_cli exited ${run_rc}:\n${run_out}\n${run_err}")
endif()

if(NOT EXISTS "${TRACE_FILE}")
  message(FATAL_ERROR "GMORPH_TRACE was set but ${TRACE_FILE} was not written")
endif()
if(NOT EXISTS "${METRICS_FILE}")
  message(FATAL_ERROR "GMORPH_METRICS was set but ${METRICS_FILE} was not written")
endif()

file(READ "${TRACE_FILE}" trace)
foreach(needle
        "{\"traceEvents\":["
        "\"ph\":\"X\""
        "\"ph\":\"M\""
        "thread_name"
        "search/run"
        "search/iteration"
        "search/sample"
        "eval/profile"
        "eval/finetune"
        "\"cat\":\"engine\""
        "\"name\":\"search-0\""
        "\"name\":\"search-1\""
        "\"name\":\"main\"")
  string(FIND "${trace}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace ${TRACE_FILE} is missing expected content: ${needle}")
  endif()
endforeach()

file(READ "${METRICS_FILE}" metrics)
foreach(needle "\"counters\":{" "search.candidates_finetuned" "\"histograms\":{"
        "search.candidate_latency_ms")
  string(FIND "${metrics}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "metrics ${METRICS_FILE} is missing expected content: ${needle}")
  endif()
endforeach()

find_program(PYTHON3 python3)
if(PYTHON3)
  foreach(f "${TRACE_FILE}" "${METRICS_FILE}")
    execute_process(COMMAND "${PYTHON3}" -m json.tool "${f}"
                    RESULT_VARIABLE json_rc OUTPUT_QUIET ERROR_VARIABLE json_err)
    if(NOT json_rc EQUAL 0)
      message(FATAL_ERROR "${f} is not valid JSON:\n${json_err}")
    endif()
  endforeach()
else()
  message(STATUS "python3 not found; skipping strict JSON validation")
endif()
