#include "src/tensor/conv_ops.h"

#include <cstring>
#include <tuple>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/common/rng.h"
#include "src/tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

using testing::MaxDiff;

// Direct (quadruple-loop) reference convolution.
Tensor NaiveConv2d(const Tensor& x, const Tensor& w, const Tensor& b, int64_t stride,
                   int64_t padding) {
  const int64_t n = x.shape()[0];
  const int64_t c = x.shape()[1];
  const int64_t h = x.shape()[2];
  const int64_t wd = x.shape()[3];
  const int64_t o = w.shape()[0];
  const int64_t k = w.shape()[2];
  const int64_t oh = ConvOutDim(h, k, stride, padding);
  const int64_t ow = ConvOutDim(wd, k, stride, padding);
  Tensor out(Shape{n, o, oh, ow});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t oc = 0; oc < o; ++oc) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          double acc = b.empty() ? 0.0 : b.at(oc);
          for (int64_t ic = 0; ic < c; ++ic) {
            for (int64_t ky = 0; ky < k; ++ky) {
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t iy = oy * stride + ky - padding;
                const int64_t ix = ox * stride + kx - padding;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wd) {
                  continue;
                }
                acc += static_cast<double>(x.at(((i * c + ic) * h + iy) * wd + ix)) *
                       w.at(((oc * c + ic) * k + ky) * k + kx);
              }
            }
          }
          out.at(((i * o + oc) * oh + oy) * ow + ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

// (kernel, stride, padding, channels, out_channels, spatial)
class ConvParamTest : public ::testing::TestWithParam<
                          std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t, int64_t>> {};

TEST_P(ConvParamTest, ForwardMatchesNaive) {
  const auto [k, s, p, c, o, hw] = GetParam();
  Rng rng(static_cast<uint64_t>(k * 31 + s * 7 + p * 3 + c + o + hw));
  Tensor x = Tensor::RandomGaussian(Shape{2, c, hw, hw}, rng);
  Tensor w = Tensor::RandomGaussian(Shape{o, c, k, k}, rng);
  Tensor b = Tensor::RandomGaussian(Shape{o}, rng);
  Tensor got = Conv2dForward(x, w, b, {s, p});
  Tensor want = NaiveConv2d(x, w, b, s, p);
  EXPECT_LT(MaxDiff(got, want), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConvParamTest,
    ::testing::Values(std::make_tuple(1, 1, 0, 3, 4, 5), std::make_tuple(3, 1, 1, 2, 3, 6),
                      std::make_tuple(3, 2, 1, 3, 5, 7), std::make_tuple(5, 1, 2, 1, 2, 8),
                      std::make_tuple(2, 2, 0, 4, 4, 8), std::make_tuple(3, 1, 0, 2, 2, 5)));

TEST(ConvBackwardTest, GradientsMatchNumeric) {
  Rng rng(42);
  Tensor x = Tensor::RandomGaussian(Shape{2, 2, 5, 5}, rng);
  Tensor w = Tensor::RandomGaussian(Shape{3, 2, 3, 3}, rng);
  Tensor b = Tensor::RandomGaussian(Shape{3}, rng);
  const Conv2dArgs args{1, 1};
  Tensor y = Conv2dForward(x, w, b, args);
  Tensor probe = Tensor::RandomGaussian(y.shape(), rng);

  Tensor grad_w = Tensor::Zeros(w.shape());
  Tensor grad_b = Tensor::Zeros(b.shape());
  Tensor grad_x = Conv2dBackward(x, w, probe, args, grad_w, grad_b);

  auto loss = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    return SumAll(Mul(Conv2dForward(xx, ww, bb, args), probe));
  };
  const float eps = 1e-2f;
  for (int trial = 0; trial < 6; ++trial) {
    {
      const int64_t i = rng.NextInt(static_cast<int>(x.size()));
      Tensor xp = x.Clone();
      xp.at(i) += eps;
      Tensor xm = x.Clone();
      xm.at(i) -= eps;
      EXPECT_NEAR(grad_x.at(i), (loss(xp, w, b) - loss(xm, w, b)) / (2 * eps), 5e-2f);
    }
    {
      const int64_t i = rng.NextInt(static_cast<int>(w.size()));
      Tensor wp = w.Clone();
      wp.at(i) += eps;
      Tensor wm = w.Clone();
      wm.at(i) -= eps;
      EXPECT_NEAR(grad_w.at(i), (loss(x, wp, b) - loss(x, wm, b)) / (2 * eps), 5e-2f);
    }
  }
  {
    Tensor bp = b.Clone();
    bp.at(0) += eps;
    Tensor bm = b.Clone();
    bm.at(0) -= eps;
    EXPECT_NEAR(grad_b.at(0), (loss(x, w, bp) - loss(x, w, bm)) / (2 * eps), 5e-2f);
  }
}

// Direct reference gradients of NaiveConv2d (double accumulators, no im2col).
void NaiveConv2dBackward(const Tensor& x, const Tensor& w, const Tensor& grad_out,
                         int64_t stride, int64_t padding, Tensor& grad_x, Tensor& grad_w,
                         Tensor& grad_b) {
  const int64_t n = x.shape()[0];
  const int64_t c = x.shape()[1];
  const int64_t h = x.shape()[2];
  const int64_t wd = x.shape()[3];
  const int64_t o = w.shape()[0];
  const int64_t k = w.shape()[2];
  const int64_t oh = grad_out.shape()[2];
  const int64_t ow = grad_out.shape()[3];
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t oc = 0; oc < o; ++oc) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float gy = grad_out.at(((i * o + oc) * oh + oy) * ow + ox);
          grad_b.at(oc) += gy;
          for (int64_t ic = 0; ic < c; ++ic) {
            for (int64_t ky = 0; ky < k; ++ky) {
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t iy = oy * stride + ky - padding;
                const int64_t ix = ox * stride + kx - padding;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wd) {
                  continue;
                }
                const int64_t xi = ((i * c + ic) * h + iy) * wd + ix;
                const int64_t wi = ((oc * c + ic) * k + ky) * k + kx;
                grad_x.at(xi) += gy * w.at(wi);
                grad_w.at(wi) += gy * x.at(xi);
              }
            }
          }
        }
      }
    }
  }
}

// Randomized-shape forward and backward against the direct references. The
// im2col path reorders float accumulation, so comparisons are tolerance-based.
TEST(ConvPropertyTest, RandomShapesMatchNaiveReference) {
  Rng rng(314);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t batch = 1 + rng.NextInt(3);
    const int64_t c = 1 + rng.NextInt(5);
    const int64_t o = 1 + rng.NextInt(6);
    const int64_t k = 1 + rng.NextInt(3);           // 1..3
    const int64_t s = 1 + rng.NextInt(2);           // 1..2
    const int64_t p = rng.NextInt(static_cast<int>(k));  // 0..k-1
    const int64_t hw = k + rng.NextInt(9);          // >= kernel
    SCOPED_TRACE(::testing::Message() << "n=" << batch << " c=" << c << " o=" << o << " k=" << k
                                      << " s=" << s << " p=" << p << " hw=" << hw);
    Tensor x = Tensor::RandomGaussian(Shape{batch, c, hw, hw}, rng);
    Tensor w = Tensor::RandomGaussian(Shape{o, c, k, k}, rng);
    Tensor b = Tensor::RandomGaussian(Shape{o}, rng);
    const Conv2dArgs args{s, p};

    Tensor got = Conv2dForward(x, w, b, args);
    Tensor want = NaiveConv2d(x, w, b, s, p);
    EXPECT_LE(MaxDiff(got, want), 1e-4f * (1.0f + MaxAbs(want)));

    Tensor grad_out = Tensor::RandomGaussian(got.shape(), rng);
    Tensor grad_w = Tensor::Zeros(w.shape());
    Tensor grad_b = Tensor::Zeros(b.shape());
    Tensor grad_x = Conv2dBackward(x, w, grad_out, args, grad_w, grad_b);

    Tensor ref_gx = Tensor::Zeros(x.shape());
    Tensor ref_gw = Tensor::Zeros(w.shape());
    Tensor ref_gb = Tensor::Zeros(b.shape());
    NaiveConv2dBackward(x, w, grad_out, s, p, ref_gx, ref_gw, ref_gb);
    EXPECT_LE(MaxDiff(grad_x, ref_gx), 1e-4f * (1.0f + MaxAbs(ref_gx)));
    EXPECT_LE(MaxDiff(grad_w, ref_gw), 1e-4f * (1.0f + MaxAbs(ref_gw)));
    EXPECT_LE(MaxDiff(grad_b, ref_gb), 1e-4f * (1.0f + MaxAbs(ref_gb)));
  }
}

// The batch-parallel forward and the per-sample-partials backward must be
// bitwise independent of the thread count (weight gradients are reduced in
// sample order regardless of which worker produced each partial).
TEST(ConvThreadDeterminismTest, BitwiseEqualAcrossThreadCounts) {
  const int restore = KernelThreads();
  Rng rng(2718);
  Tensor x = Tensor::RandomGaussian(Shape{5, 3, 9, 9}, rng);
  Tensor w = Tensor::RandomGaussian(Shape{4, 3, 3, 3}, rng);
  Tensor b = Tensor::RandomGaussian(Shape{4}, rng);
  const Conv2dArgs args{1, 1};

  auto run = [&](int threads, Tensor& grad_w, Tensor& grad_b, Tensor& grad_x) {
    SetKernelThreads(threads);
    Tensor y = Conv2dForward(x, w, b, args);
    Tensor grad_out = y;  // deterministic, shape-correct upstream gradient
    grad_w = Tensor::Zeros(w.shape());
    grad_b = Tensor::Zeros(b.shape());
    grad_x = Conv2dBackward(x, w, grad_out, args, grad_w, grad_b);
    return y;
  };
  Tensor gw1, gb1, gx1, gw4, gb4, gx4;
  Tensor y1 = run(1, gw1, gb1, gx1);
  Tensor y4 = run(4, gw4, gb4, gx4);
  SetKernelThreads(restore);

  auto bitwise_equal = [](const Tensor& a, const Tensor& b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), static_cast<size_t>(a.size()) * sizeof(float)) == 0;
  };
  EXPECT_TRUE(bitwise_equal(y1, y4));
  EXPECT_TRUE(bitwise_equal(gx1, gx4));
  EXPECT_TRUE(bitwise_equal(gw1, gw4));
  EXPECT_TRUE(bitwise_equal(gb1, gb4));
}

TEST(MaxPoolTest, SelectsWindowMaxima) {
  Tensor x = Tensor::FromVector(Shape{1, 1, 4, 4},
                                {1, 2, 5, 4,   //
                                 3, 0, 1, 1,   //
                                 9, 8, 0, 0,   //
                                 7, 6, 0, 2});
  std::vector<int64_t> argmax;
  Tensor y = MaxPool2dForward(x, 2, 2, argmax);
  EXPECT_EQ(y.shape().dims(), (std::vector<int64_t>{1, 1, 2, 2}));
  EXPECT_EQ(y.at(0), 3.0f);
  EXPECT_EQ(y.at(1), 5.0f);
  EXPECT_EQ(y.at(2), 9.0f);
  EXPECT_EQ(y.at(3), 2.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  Rng rng(5);
  Tensor x = Tensor::RandomGaussian(Shape{1, 2, 4, 4}, rng);
  std::vector<int64_t> argmax;
  Tensor y = MaxPool2dForward(x, 2, 2, argmax);
  Tensor g = Tensor::Full(y.shape(), 1.0f);
  Tensor gx = MaxPool2dBackward(x.shape(), g, argmax);
  EXPECT_FLOAT_EQ(SumAll(gx), static_cast<float>(y.size()));
  // Gradient lands only at argmax positions.
  for (int64_t i = 0; i < gx.size(); ++i) {
    EXPECT_TRUE(gx.at(i) == 0.0f || gx.at(i) == 1.0f);
  }
}

TEST(GlobalAvgPoolTest, ForwardBackward) {
  Tensor x = Tensor::FromVector(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = GlobalAvgPoolForward(x);
  EXPECT_FLOAT_EQ(y.at(0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(1), 10.0f);
  Tensor g = Tensor::FromVector(Shape{1, 2}, {4.0f, 8.0f});
  Tensor gx = GlobalAvgPoolBackward(x.shape(), g);
  EXPECT_FLOAT_EQ(gx.at(0), 1.0f);
  EXPECT_FLOAT_EQ(gx.at(4), 2.0f);
}

TEST(BilinearResizeTest, IdentityWhenSameSize) {
  Rng rng(6);
  Tensor x = Tensor::RandomGaussian(Shape{1, 2, 5, 5}, rng);
  EXPECT_LT(MaxDiff(BilinearResizeForward(x, 5, 5), x), 1e-6f);
}

TEST(BilinearResizeTest, PreservesConstantFields) {
  Tensor x = Tensor::Full(Shape{1, 1, 4, 4}, 3.0f);
  Tensor y = BilinearResizeForward(x, 7, 3);
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y.at(i), 3.0f, 1e-6f);
  }
}

TEST(BilinearResizeTest, BackwardConservesMass) {
  Rng rng(7);
  Tensor grad_out = Tensor::RandomGaussian(Shape{1, 1, 6, 6}, rng);
  Tensor gx = BilinearResizeBackward(Shape{1, 1, 3, 3}, grad_out);
  // Interpolation weights per output pixel sum to 1, so total mass matches.
  EXPECT_NEAR(SumAll(gx), SumAll(grad_out), 1e-4f);
}

TEST(TokenResizeTest, IdentityAndMass) {
  Rng rng(8);
  Tensor x = Tensor::RandomGaussian(Shape{2, 4, 3}, rng);
  EXPECT_LT(MaxDiff(LinearResizeTokensForward(x, 4), x), 1e-6f);
  Tensor g = Tensor::RandomGaussian(Shape{2, 8, 3}, rng);
  Tensor gx = LinearResizeTokensBackward(Shape{2, 4, 3}, g);
  EXPECT_NEAR(SumAll(gx), SumAll(g), 1e-4f);
}

TEST(ConvOutDimTest, FormulaAndGuard) {
  EXPECT_EQ(ConvOutDim(32, 3, 1, 1), 32);
  EXPECT_EQ(ConvOutDim(32, 2, 2, 0), 16);
  EXPECT_EQ(ConvOutDim(5, 3, 2, 0), 2);
  EXPECT_THROW(ConvOutDim(2, 5, 1, 0), CheckError);
}

}  // namespace
}  // namespace gmorph
