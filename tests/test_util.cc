#include "tests/test_util.h"

#include <vector>

#include "src/tensor/tensor_ops.h"

namespace gmorph::testing {
namespace {

float ProbeLoss(Module& module, const Tensor& x, const Tensor& probe) {
  Tensor y = module.Forward(x, /*training=*/true);
  return SumAll(Mul(y, probe));
}

}  // namespace

void GradCheckModule(Module& module, const Tensor& x, float tolerance, Rng& rng, float epsilon) {
  module.ZeroGrad();
  Tensor y = module.Forward(x, /*training=*/true);
  Tensor probe = Tensor::RandomGaussian(y.shape(), rng);
  Tensor grad_x = module.Backward(probe);

  // Snapshot analytic gradients before numeric evaluation clobbers caches.
  std::vector<Tensor> param_grads;
  for (Parameter* p : module.Parameters()) {
    param_grads.push_back(p->grad.Clone());
  }

  // Check a sample of input-gradient entries.
  Tensor x_mut = x.Clone();
  const int input_samples = static_cast<int>(std::min<int64_t>(8, x.size()));
  for (int s = 0; s < input_samples; ++s) {
    const int64_t i = rng.NextInt(static_cast<int>(x.size()));
    const float saved = x_mut.at(i);
    x_mut.at(i) = saved + epsilon;
    const float up = ProbeLoss(module, x_mut, probe);
    x_mut.at(i) = saved - epsilon;
    const float down = ProbeLoss(module, x_mut, probe);
    x_mut.at(i) = saved;
    const float numeric = (up - down) / (2 * epsilon);
    EXPECT_NEAR(grad_x.at(i), numeric, tolerance) << "input grad at flat index " << i;
  }

  // Check a sample of entries in every parameter tensor.
  auto params = module.Parameters();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    const int samples = static_cast<int>(std::min<int64_t>(6, p->value.size()));
    for (int s = 0; s < samples; ++s) {
      const int64_t i = rng.NextInt(static_cast<int>(p->value.size()));
      const float saved = p->value.at(i);
      p->value.at(i) = saved + epsilon;
      const float up = ProbeLoss(module, x, probe);
      p->value.at(i) = saved - epsilon;
      const float down = ProbeLoss(module, x, probe);
      p->value.at(i) = saved;
      const float numeric = (up - down) / (2 * epsilon);
      EXPECT_NEAR(param_grads[pi].at(i), numeric, tolerance)
          << "param " << p->name << " grad at flat index " << i;
    }
  }
}

}  // namespace gmorph::testing
