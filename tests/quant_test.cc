// Tests for the int8 quantization path (src/quant + the kernel/runtime
// layers it drives): bitwise qgemm solver cross-checks against the reference
// loop, recipe line/file round-trips, the strict recipe linter's rule ids
// over the seeded-defect fixture (the recipe grammar has no comments, so the
// fixture is documented here: line 3 drops in_zp -> quant.entry, line 4 has a
// negative in_scale -> quant.scale, line 5 an out-of-range in_zp -> quant.zp,
// line 6 a zero per-channel weight scale -> quant.scale, line 7 reuses seq=0
// -> quant.duplicate), calibrate->quantize accuracy bounds on every zoo
// benchmark, the zero-allocation steady state of a quantized engine, and the
// engine-level scorer the search injects through EvalOptions::quant_score.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/quant_verifier.h"
#include "src/common/rng.h"
#include "src/core/candidate_eval.h"
#include "src/core/model_parser.h"
#include "src/core/multitask_model.h"
#include "src/data/benchmarks.h"
#include "src/kernels/registry.h"
#include "src/kernels/scratch.h"
#include "src/kernels/solver.h"
#include "src/quant/qparams.h"
#include "src/quant/recipe.h"
#include "src/runtime/fused_engine.h"
#include "src/runtime/quant_scoring.h"
#include "tests/test_util.h"

#ifndef GMORPH_TESTDATA_DIR
#define GMORPH_TESTDATA_DIR "tests/testdata"
#endif

namespace gmorph {
namespace {

using kernels::ProblemDesc;
using kernels::ProblemKey;
using kernels::QGemmCall;
using kernels::QGemmSolver;
using kernels::SolverRegistry;

struct QGemmCase {
  int64_t m, k, n;
};

// Edge shapes for the int8 tile loops: single rows/columns, K below one
// dword group (VNNI packs K in groups of 4), N straddling the 64-column
// panel, plus the transposed conv orientations the engine actually runs.
const QGemmCase kQGemmEdgeCases[] = {
    {1, 1, 1},   {1, 3, 1},    {5, 1, 9},     {1, 4, 64},   {2, 5, 65},
    {3, 27, 64}, {7, 130, 17}, {64, 48, 64},  {31, 33, 35}, {8, 27, 1024},
    {197, 64, 192}, {1024, 27, 8},
};

TEST(QGemmSolverPropertyTest, AllSolversBitwiseMatchReference) {
  Rng rng(4321);
  const SolverRegistry& registry = SolverRegistry::Global();
  ASSERT_FALSE(registry.qgemm_solvers().empty());
  std::vector<QGemmCase> cases(std::begin(kQGemmEdgeCases), std::end(kQGemmEdgeCases));
  for (int i = 0; i < 6; ++i) {
    cases.push_back({1 + static_cast<int64_t>(rng.NextU64() % 70),
                     1 + static_cast<int64_t>(rng.NextU64() % 70),
                     1 + static_cast<int64_t>(rng.NextU64() % 70)});
  }
  for (const QGemmCase& c : cases) {
    const ProblemDesc desc = kernels::QGemmProblem(c.m, c.k, c.n);
    std::vector<uint8_t> a(static_cast<size_t>(c.m * c.k));
    std::vector<int8_t> b(static_cast<size_t>(c.k * c.n));
    for (uint8_t& v : a) {
      v = static_cast<uint8_t>(rng.NextU64() % 256);
    }
    for (int8_t& v : b) {
      v = static_cast<int8_t>(static_cast<int64_t>(rng.NextU64() % 255) - 127);
    }
    std::vector<int32_t> want(static_cast<size_t>(c.m * c.n));
    kernels::RefQMatmulNN(a.data(), b.data(), want.data(), c.m, c.k, c.n);
    for (const QGemmSolver* solver : registry.qgemm_solvers()) {
      if (!solver->IsApplicable(desc)) {
        continue;
      }
      // Poisoned so a solver that skips tail tiles is caught, not masked by
      // zero-initialized output happening to equal a zero product.
      std::vector<int32_t> got(want.size(), INT32_MIN);
      solver->Run(desc, QGemmCall{a.data(), b.data(), got.data()});
      for (size_t idx = 0; idx < want.size(); ++idx) {
        // Integer accumulation is exact: every solver must match bitwise.
        ASSERT_EQ(got[idx], want[idx])
            << solver->name() << " " << ProblemKey(desc) << " element " << idx;
      }
    }
    const QGemmSolver* resolved = registry.ResolveQGemm(desc);
    ASSERT_NE(resolved, nullptr) << ProblemKey(desc);
    EXPECT_TRUE(resolved->IsApplicable(desc)) << resolved->name();
    const QGemmSolver* heuristic = registry.HeuristicQGemm(desc);
    ASSERT_NE(heuristic, nullptr) << ProblemKey(desc);
    EXPECT_TRUE(heuristic->IsApplicable(desc)) << heuristic->name();
  }
}

TEST(QuantRecipeTest, StepLineRoundTripsExactly) {
  quant::StepQuantSpec spec;
  spec.seq = 12;
  spec.kind = "conv";
  spec.label = "block 3 / conv=1";  // spaces and '=' must be sanitized
  spec.in_q.scale = 0.0123456789f;
  spec.in_q.zero_point = 131;
  spec.w_scales = {1.17549435e-38f, 0.25f, 3.0f};

  const std::string line = quant::FormatQuantStepLine(spec);
  quant::StepQuantSpec parsed;
  std::string error;
  ASSERT_TRUE(quant::ParseQuantStepLine(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.seq, spec.seq);
  EXPECT_EQ(parsed.kind, spec.kind);
  EXPECT_EQ(parsed.label, "block_3_/_conv_1");
  // %.9g round-trips float32 exactly, so equality is bitwise, not approximate.
  EXPECT_EQ(parsed.in_q.scale, spec.in_q.scale);
  EXPECT_EQ(parsed.in_q.zero_point, spec.in_q.zero_point);
  ASSERT_EQ(parsed.w_scales.size(), spec.w_scales.size());
  for (size_t i = 0; i < spec.w_scales.size(); ++i) {
    EXPECT_EQ(parsed.w_scales[i], spec.w_scales[i]) << "channel " << i;
  }
}

TEST(QuantRecipeTest, ParseRejectsMalformedLines) {
  quant::StepQuantSpec spec;
  std::string error;
  const char* bad[] = {
      "stop seq=0 kind=conv in_scale=1 in_zp=0 w_scales=1",
      "step seq=0 kind=conv in_scale=1 w_scales=1",           // missing in_zp
      "step seq=0 kind=conv in_scale=1 in_zp=256 w_scales=1", // zp > 255
      "step seq=-1 kind=conv in_scale=1 in_zp=0 w_scales=1",  // negative seq
      "step seq=0 kind=conv in_scale=1 in_zp=0 w_scales=1,nope",
      "step seq=0 kind=conv in_scale=1 in_zp=0 w_scales=1 bogus",
  };
  for (const char* line : bad) {
    error.clear();
    EXPECT_FALSE(quant::ParseQuantStepLine(line, &spec, &error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(QuantRecipeTest, SaveLoadRoundTripAndStrictLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gmorph_quant_roundtrip.quantrecipe").string();
  quant::QuantRecipe recipe;
  for (int i = 0; i < 3; ++i) {
    quant::StepQuantSpec s;
    s.seq = i * 2;
    s.kind = i == 2 ? "linear" : "conv";
    s.label = "step" + std::to_string(i);
    s.in_q.scale = 0.5f / static_cast<float>(i + 1);
    s.in_q.zero_point = 10 * i;
    s.w_scales.assign(static_cast<size_t>(i + 1), 0.125f);
    recipe.steps.push_back(s);
  }
  std::string error;
  ASSERT_TRUE(quant::SaveQuantRecipe(recipe, path, &error)) << error;

  quant::QuantRecipe loaded;
  ASSERT_TRUE(quant::LoadQuantRecipe(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.steps.size(), recipe.steps.size());
  for (size_t i = 0; i < recipe.steps.size(); ++i) {
    EXPECT_EQ(loaded.steps[i].seq, recipe.steps[i].seq);
    EXPECT_EQ(loaded.steps[i].kind, recipe.steps[i].kind);
    EXPECT_EQ(loaded.steps[i].in_q.scale, recipe.steps[i].in_q.scale);
    EXPECT_EQ(loaded.steps[i].in_q.zero_point, recipe.steps[i].in_q.zero_point);
    EXPECT_EQ(loaded.steps[i].w_scales, recipe.steps[i].w_scales);
  }
  EXPECT_EQ(loaded.FindSeq(4)->kind, "linear");
  EXPECT_EQ(loaded.FindSeq(1), nullptr);

  // A saved recipe must satisfy its own strict linter.
  EXPECT_TRUE(VerifyQuantRecipeFile(path).ok());

  // Load refuses corruption outright instead of dropping lines (a recipe
  // drives numerics); the linter reports the same file finding-by-finding.
  const std::string corrupt = std::string(GMORPH_TESTDATA_DIR) + "/quantrecipe_corrupt.txt";
  quant::QuantRecipe rejected;
  EXPECT_FALSE(quant::LoadQuantRecipe(corrupt, &rejected, &error));
  EXPECT_FALSE(quant::LoadQuantRecipe(path + ".does_not_exist", &rejected, &error));
  std::filesystem::remove(path);
}

TEST(QuantVerifierTest, CorruptFixtureReportsEveryAdvertisedRule) {
  const std::string path = std::string(GMORPH_TESTDATA_DIR) + "/quantrecipe_corrupt.txt";
  const DiagnosticList diags = VerifyQuantRecipeFile(path);
  EXPECT_FALSE(diags.ok());
  EXPECT_TRUE(diags.HasRule("quant.entry"));      // line 3: missing in_zp
  EXPECT_TRUE(diags.HasRule("quant.scale"));      // lines 4 and 6
  EXPECT_TRUE(diags.HasRule("quant.zp"));         // line 5: in_zp=999
  EXPECT_TRUE(diags.HasRule("quant.duplicate"));  // line 7: seq=0 again
  // Both scale defects (negative in_scale, zero w_scale) are found, plus one
  // error for each of the other three seeded lines.
  EXPECT_EQ(diags.error_count(), 5);
}

TEST(QuantVerifierTest, MissingHeaderAndVersionAndEmpty) {
  namespace fs = std::filesystem;
  const std::string dir = (fs::temp_directory_path() / "gmorph_quant_verifier").string();
  fs::create_directories(dir);
  auto write = [&](const std::string& name, const std::string& body) {
    const std::string p = dir + "/" + name;
    std::ofstream(p) << body;
    return p;
  };
  EXPECT_TRUE(VerifyQuantRecipeFile(dir + "/nope.quantrecipe").HasRule("quant.open"));
  EXPECT_TRUE(VerifyQuantRecipeFile(write("noheader", "step seq=0\n")).HasRule("quant.header"));
  EXPECT_TRUE(VerifyQuantRecipeFile(write("v2", "gmorph-quant v2\n")).HasRule("quant.version"));
  const DiagnosticList empty = VerifyQuantRecipeFile(write("empty", "gmorph-quant v1\n"));
  EXPECT_TRUE(empty.ok());  // header-only recipe is suspicious, not fatal
  EXPECT_TRUE(empty.HasRule("quant.entry"));
  fs::remove_all(dir);
}

// ---- End-to-end engine quantization over the zoo benchmarks ----

BenchmarkScale QuantScale() {
  BenchmarkScale s;
  s.train_size = 48;
  s.test_size = 32;
  s.cnn_width = 4;
  return s;
}

class QuantZooAccuracy : public ::testing::TestWithParam<int> {};

// Calibrate -> quantize every benchmark bundle and bound the accuracy drop:
// int8 must stay within 1% absolute of the f32 engine on the same test split
// (the paper-level acceptance bar for the low-precision path).
TEST_P(QuantZooAccuracy, Int8WithinOnePercentOfF32) {
  const int bench = GetParam();
  Rng rng(29 + bench);
  BenchmarkDef def = MakeBenchmark(bench, QuantScale(), 71);
  std::vector<ModelSpec> specs;
  for (const BenchmarkTask& task : def.tasks) {
    specs.push_back(task.model);
  }
  AbsGraph g = ParseModelSpecs(specs);
  MultiTaskModel model(g, rng);
  FusedEngine engine(&model);

  const std::vector<double> f32_scores = EngineEvaluateMultiTask(engine, def.test, 16);

  std::vector<Tensor> calib = {def.train.InputBatch(0, 16), def.train.InputBatch(16, 16)};
  const quant::QuantRecipe recipe = engine.Calibrate(calib);
  EXPECT_FALSE(recipe.steps.empty());
  const int applied = engine.Quantize(recipe);
  EXPECT_GT(applied, 0) << def.id;
  EXPECT_EQ(applied, engine.num_quantized_steps());

  const std::vector<double> int8_scores = EngineEvaluateMultiTask(engine, def.test, 16);
  ASSERT_EQ(int8_scores.size(), f32_scores.size());
  for (size_t t = 0; t < f32_scores.size(); ++t) {
    EXPECT_LE(f32_scores[t] - int8_scores[t], 0.01 + 1e-9)
        << def.id << " task " << def.tasks[t].name << ": f32 " << f32_scores[t] << " -> int8 "
        << int8_scores[t];
  }
}

INSTANTIATE_TEST_SUITE_P(AllZoo, QuantZooAccuracy, ::testing::Range(1, kNumBenchmarks + 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "B" + std::to_string(info.param);
                         });

TEST(QuantEngineTest, QuantizedRunsAreDeterministic) {
  Rng rng(31);
  BenchmarkDef def = MakeBenchmark(1, QuantScale(), 73);
  std::vector<ModelSpec> specs;
  for (const BenchmarkTask& task : def.tasks) {
    specs.push_back(task.model);
  }
  AbsGraph g = ParseModelSpecs(specs);
  MultiTaskModel model(g, rng);
  FusedEngine engine(&model);
  engine.Quantize(engine.Calibrate({def.train.InputBatch(0, 16)}));
  ASSERT_GT(engine.num_quantized_steps(), 0);

  const Tensor x = def.test.InputBatch(0, 4);
  std::vector<Tensor> first;
  for (const Tensor& out : engine.Run(x)) {
    first.push_back(out.Clone());  // engine outputs alias internal buffers
  }
  std::vector<Tensor> second = engine.Run(x);
  ASSERT_EQ(first.size(), second.size());
  for (size_t t = 0; t < first.size(); ++t) {
    // Integer accumulation is exact, so repeat runs are bitwise identical.
    EXPECT_EQ(testing::MaxDiff(first[t], second[t]), 0.0f);
  }
}

TEST(QuantEngineTest, QuantizedSteadyStateRunAllocatesNothing) {
  Rng rng(37);
  BenchmarkDef def = MakeBenchmark(1, QuantScale(), 79);
  std::vector<ModelSpec> specs;
  for (const BenchmarkTask& task : def.tasks) {
    specs.push_back(task.model);
  }
  AbsGraph g = ParseModelSpecs(specs);
  MultiTaskModel model(g, rng);
  FusedEngine engine(&model);
  engine.Quantize(engine.Calibrate({def.train.InputBatch(0, 16)}));
  ASSERT_GT(engine.num_quantized_steps(), 0);

  const Tensor x = def.test.InputBatch(0, 4);
  engine.Run(x);  // first sight of the batch size binds buffers and scratch
  engine.Run(x);
  const int64_t tensor_bytes = Tensor::TotalAllocatedBytes();
  const int64_t scratch_bytes = ScratchArena::TotalHeapBytes();
  for (int i = 0; i < 3; ++i) {
    engine.Run(x);
  }
  // The int8 path (u8 im2col staging, packed weights, s32 accumulators,
  // dequant epilogue) must run entirely out of prebound storage.
  EXPECT_EQ(Tensor::TotalAllocatedBytes(), tensor_bytes);
  EXPECT_EQ(ScratchArena::TotalHeapBytes(), scratch_bytes);
}

TEST(QuantEngineTest, ScoreQuantizedEngineReportsBudgetAndLatency) {
  Rng rng(41);
  BenchmarkDef def = MakeBenchmark(1, QuantScale(), 83);
  std::vector<ModelSpec> specs;
  for (const BenchmarkTask& task : def.tasks) {
    specs.push_back(task.model);
  }
  AbsGraph g = ParseModelSpecs(specs);
  MultiTaskModel model(g, rng);
  FusedEngine probe(&model);
  const std::vector<double> f32_scores = EngineEvaluateMultiTask(probe, def.test, 16);

  EvalOptions options;
  options.quant.enabled = true;
  options.quant.calib_batches = 2;
  options.quant.calib_batch_size = 16;
  options.quant.drop_budget = 0.01;
  options.finetune.batch_size = 16;
  options.latency.warmup_runs = 1;
  options.latency.measured_runs = 3;
  const QuantOutcome out =
      ScoreQuantizedEngine(model, def.train, def.test, f32_scores, options);
  EXPECT_GT(out.quantized_steps, 0);
  EXPECT_GT(out.latency_ms, 0.0);
  EXPECT_EQ(out.task_scores.size(), f32_scores.size());
  EXPECT_TRUE(out.within_budget) << "max drop " << out.max_drop;

  // The quant knobs join the eval-options hash only when enabled, so f32
  // cache namespaces stay byte-stable for configs that never opt in.
  EvalOptions f32_options;
  EvalOptions disabled_with_knobs;
  disabled_with_knobs.quant.calib_batches = 7;
  EXPECT_EQ(HashEvalOptions(f32_options), HashEvalOptions(disabled_with_knobs));
  EvalOptions enabled = f32_options;
  enabled.quant.enabled = true;
  EXPECT_NE(HashEvalOptions(f32_options), HashEvalOptions(enabled));
}

}  // namespace
}  // namespace gmorph
