#include "src/serving/serving_sim.h"

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/core/model_parser.h"
#include "src/models/zoo.h"

namespace gmorph {
namespace {

ServingOptions Opts(double qps, int n = 200, int max_batch = 4) {
  ServingOptions o;
  o.arrival_qps = qps;
  o.num_requests = n;
  o.max_batch = max_batch;
  o.seed = 9;
  return o;
}

TEST(ServingSimTest, DeterministicGivenSeed) {
  const std::vector<double> service = {1.0, 1.5, 1.8, 2.0};
  ServingStats a = SimulateServingWithServiceTimes(service, Opts(500));
  ServingStats b = SimulateServingWithServiceTimes(service, Opts(500));
  EXPECT_DOUBLE_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_DOUBLE_EQ(a.p99_latency_ms, b.p99_latency_ms);
}

TEST(ServingSimTest, LatencyAtLeastServiceTime) {
  const std::vector<double> service = {2.0, 3.0, 4.0, 5.0};
  ServingStats s = SimulateServingWithServiceTimes(service, Opts(50));
  EXPECT_GE(s.p50_latency_ms, 2.0);
  EXPECT_LE(s.p50_latency_ms, s.p95_latency_ms);
  EXPECT_LE(s.p95_latency_ms, s.p99_latency_ms);
}

TEST(ServingSimTest, LightLoadNoBatching) {
  // Arrivals far apart relative to service time: every batch has one request
  // and latency approximately equals the single-request service time.
  const std::vector<double> service = {1.0, 1.2, 1.4, 1.6};
  ServingStats s = SimulateServingWithServiceTimes(service, Opts(/*qps=*/10));
  EXPECT_NEAR(s.mean_batch_size, 1.0, 0.05);
  EXPECT_NEAR(s.mean_latency_ms, 1.0, 0.2);
}

TEST(ServingSimTest, OverloadSaturatesAtBatchCapacity) {
  // Service 1ms regardless of batch size, max_batch 4 => capacity 4000 qps.
  const std::vector<double> service = {1.0, 1.0, 1.0, 1.0};
  ServingStats s = SimulateServingWithServiceTimes(service, Opts(/*qps=*/100000, 400));
  EXPECT_NEAR(s.mean_batch_size, 4.0, 0.1);
  EXPECT_NEAR(s.throughput_qps, 4000.0, 300.0);
}

TEST(ServingSimTest, FasterServiceHigherThroughputUnderOverload) {
  const std::vector<double> slow = {4.0, 4.4, 4.8, 5.2};
  const std::vector<double> fast = {2.0, 2.2, 2.4, 2.6};
  ServingStats s_slow = SimulateServingWithServiceTimes(slow, Opts(5000, 300));
  ServingStats s_fast = SimulateServingWithServiceTimes(fast, Opts(5000, 300));
  EXPECT_GT(s_fast.throughput_qps, s_slow.throughput_qps * 1.5);
  EXPECT_LT(s_fast.p95_latency_ms, s_slow.p95_latency_ms);
}

TEST(ServingSimTest, MaxBatchCapsBatchSize) {
  const std::vector<double> service = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  ServingOptions o = Opts(100000, 200, /*max_batch=*/3);
  ServingStats s = SimulateServingWithServiceTimes(service, o);
  EXPECT_LE(s.mean_batch_size, 3.0 + 1e-9);
}

TEST(ServingSimTest, RejectsEmptyServiceTimes) {
  EXPECT_THROW(SimulateServingWithServiceTimes({}, Opts(10)), CheckError);
}

TEST(ServingSimTest, EndToEndWithRealEngine) {
  Rng rng(5);
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 2;
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts)});
  MultiTaskModel model(g, rng);
  EagerEngine engine(&model);
  ServingOptions so = Opts(200, 60, 4);
  so.calibration_runs = 1;
  ServingStats s = SimulateServing(engine, g.node(0).output_shape, so);
  EXPECT_GT(s.throughput_qps, 0.0);
  EXPECT_EQ(s.service_time_ms.size(), 4u);
  // Larger batches take no less wall time than batch 1.
  EXPECT_GE(s.service_time_ms[3], s.service_time_ms[0] * 0.8);
}

}  // namespace
}  // namespace gmorph
