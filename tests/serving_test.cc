#include "src/serving/serving_sim.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/check.h"
#include "src/core/model_parser.h"
#include "src/models/zoo.h"
#include "src/serving/scheduler.h"

namespace gmorph {
namespace {

ServingOptions Opts(double qps, int n = 200, int max_batch = 4) {
  ServingOptions o;
  o.arrival_qps = qps;
  o.num_requests = n;
  o.max_batch = max_batch;
  o.seed = 9;
  return o;
}

// ---- Scheduler core (shared by the simulator and the threaded server) ----

TEST(SchedulerCoreTest, ArrivalsDeterministicAndIncreasing) {
  const std::vector<double> a = GenerateArrivalsMs(500.0, 100, 7);
  const std::vector<double> b = GenerateArrivalsMs(500.0, 100, 7);
  ASSERT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.front(), 0.0);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i], a[i - 1]);
  }
  // Mean gap approximately 1000/qps = 2ms.
  EXPECT_NEAR(a.back() / 100.0, 2.0, 1.0);
}

TEST(SchedulerCoreTest, BurstyArrivalsMatchMeanRateAndDegenerate) {
  const std::vector<double> bursty = GenerateBurstyArrivalsMs(400.0, 4.0, 50.0, 400, 3);
  ASSERT_EQ(bursty.size(), 400u);
  for (size_t i = 1; i < bursty.size(); ++i) {
    EXPECT_GT(bursty[i], bursty[i - 1]);
  }
  // burst_factor 1 is exactly the plain Poisson stream.
  EXPECT_EQ(GenerateBurstyArrivalsMs(400.0, 1.0, 50.0, 100, 3),
            GenerateArrivalsMs(400.0, 100, 3));
}

TEST(SchedulerCoreTest, ServiceTimeTableBasics) {
  ServiceTimeTable table({2.0, 1.5, 3.0});
  EXPECT_EQ(table.max_batch(), 3);
  EXPECT_DOUBLE_EQ(table.BatchMs(1), 2.0);
  EXPECT_DOUBLE_EQ(table.BatchMs(3), 3.0);
  EXPECT_DOUBLE_EQ(table.MinMs(), 1.5);
  EXPECT_THROW(ServiceTimeTable({1.0, 0.0}), CheckError);
  EXPECT_THROW(ServiceTimeTable(std::vector<double>{}), CheckError);
}

TEST(SchedulerCoreTest, NextBatchSizeCapsAtMax) {
  EXPECT_EQ(NextBatchSize(3, 8), 3);
  EXPECT_EQ(NextBatchSize(9, 8), 8);
  EXPECT_EQ(NextBatchSize(8, 8), 8);
}

TEST(SchedulerCoreTest, DeadlineUnmeetableBounds) {
  ServiceTimeTable table({2.0, 2.5, 3.0, 3.5});
  // Empty queue: the request needs one fastest batch (2ms).
  EXPECT_FALSE(DeadlineUnmeetable(10.0, 12.0, 0, table, 4));
  EXPECT_TRUE(DeadlineUnmeetable(10.0, 11.9, 0, table, 4));
  // 8 queued ahead = 2 full batches before ours: earliest = now + 3 * 2ms.
  EXPECT_FALSE(DeadlineUnmeetable(0.0, 6.0, 8, table, 4));
  EXPECT_TRUE(DeadlineUnmeetable(0.0, 5.9, 8, table, 4));
  // With 2 servers those 2 batches run in one round: earliest = now + 2 * 2ms.
  EXPECT_FALSE(DeadlineUnmeetable(0.0, 4.0, 8, table, 4, /*servers=*/2));
  EXPECT_TRUE(DeadlineUnmeetable(0.0, 3.9, 8, table, 4, /*servers=*/2));
}

TEST(SchedulerCoreTest, StatsBuilderPercentilesMonotone) {
  StatsBuilder builder;
  for (int i = 100; i >= 1; --i) {
    builder.AddLatency(static_cast<double>(i));
  }
  builder.AddBatch(60);
  builder.AddBatch(40);
  builder.AddShed(5);
  const ServingStats stats = builder.Finalize(1000.0, ServiceTimeTable({1.0}));
  EXPECT_EQ(stats.num_completed, 100);
  EXPECT_EQ(stats.num_shed, 5);
  EXPECT_EQ(stats.num_batches, 2);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 50.0);
  EXPECT_DOUBLE_EQ(stats.throughput_qps, 100.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_LE(stats.p95_latency_ms, stats.p99_latency_ms);
  EXPECT_DOUBLE_EQ(stats.mean_latency_ms, 50.5);
}

// ---- Virtual-time simulator (ported onto the scheduler interface) ----

TEST(ServingSimTest, DeterministicGivenSeed) {
  const std::vector<double> service = {1.0, 1.5, 1.8, 2.0};
  ServingStats a = SimulateServingWithServiceTimes(service, Opts(500));
  ServingStats b = SimulateServingWithServiceTimes(service, Opts(500));
  EXPECT_DOUBLE_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_DOUBLE_EQ(a.p99_latency_ms, b.p99_latency_ms);
}

// The scheduler refactor must reproduce the pre-refactor simulator bit for
// bit: these values were captured from SimulateServingWithServiceTimes at
// commit 962824e (printed with %.17g, which round-trips doubles exactly).
TEST(ServingSimGoldenTest, ModerateLoad) {
  const ServingStats s = SimulateServingWithServiceTimes({1.0, 1.5, 1.8, 2.0}, Opts(500));
  EXPECT_DOUBLE_EQ(s.throughput_qps, 526.71210027565724);
  EXPECT_DOUBLE_EQ(s.mean_latency_ms, 1.4116585115686704);
  EXPECT_DOUBLE_EQ(s.p50_latency_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.p95_latency_ms, 2.5018407745938021);
  EXPECT_DOUBLE_EQ(s.p99_latency_ms, 2.8704984281333665);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 1.1494252873563218);
  EXPECT_EQ(s.num_batches, 174);
}

TEST(ServingSimGoldenTest, LightLoad) {
  const ServingStats s = SimulateServingWithServiceTimes({2.0, 3.0, 4.0, 5.0}, Opts(50));
  EXPECT_DOUBLE_EQ(s.throughput_qps, 52.782414573315855);
  EXPECT_DOUBLE_EQ(s.mean_latency_ms, 2.1797279905536233);
  EXPECT_DOUBLE_EQ(s.p95_latency_ms, 3.7318229312713811);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 1.0101010101010102);
  EXPECT_EQ(s.num_batches, 198);
}

TEST(ServingSimGoldenTest, Overload) {
  const ServingStats s =
      SimulateServingWithServiceTimes({1.0, 1.0, 1.0, 1.0}, Opts(100000, 400));
  EXPECT_DOUBLE_EQ(s.throughput_qps, 3960.3960396039602);
  EXPECT_DOUBLE_EQ(s.mean_latency_ms, 49.284422053349537);
  EXPECT_DOUBLE_EQ(s.p50_latency_ms, 49.120332549910586);
  EXPECT_DOUBLE_EQ(s.p99_latency_ms, 96.002738069742179);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 3.9603960396039604);
  EXPECT_EQ(s.num_batches, 101);
}

TEST(ServingSimGoldenTest, WideBatchTable) {
  ServingOptions o = Opts(2000, 300, 8);
  o.seed = 123;
  const ServingStats s =
      SimulateServingWithServiceTimes({0.5, 0.8, 1.1, 1.3, 1.4, 1.5, 1.6, 1.7}, o);
  EXPECT_DOUBLE_EQ(s.throughput_qps, 2106.3368757130756);
  EXPECT_DOUBLE_EQ(s.mean_latency_ms, 1.1614815337371898);
  EXPECT_DOUBLE_EQ(s.p50_latency_ms, 1.1515078770027287);
  EXPECT_DOUBLE_EQ(s.p95_latency_ms, 2.0873606743716948);
  EXPECT_DOUBLE_EQ(s.p99_latency_ms, 2.3963216729406933);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 1.6304347826086956);
  EXPECT_EQ(s.num_batches, 184);
}

TEST(ServingSimGoldenTest, BatchCapBelowTable) {
  ServingOptions o = Opts(900, 250, 6);
  o.seed = 7;
  const ServingStats s =
      SimulateServingWithServiceTimes({3.0, 3.2, 3.4, 3.6, 3.8, 4.0, 4.2, 4.4}, o);
  EXPECT_DOUBLE_EQ(s.throughput_qps, 800.76572580825041);
  EXPECT_DOUBLE_EQ(s.mean_latency_ms, 5.1545956835720093);
  EXPECT_DOUBLE_EQ(s.p50_latency_ms, 5.1266822829772991);
  EXPECT_DOUBLE_EQ(s.p95_latency_ms, 6.8900434028062927);
  EXPECT_DOUBLE_EQ(s.p99_latency_ms, 7.1119876515491853);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 2.7777777777777777);
  EXPECT_EQ(s.num_batches, 90);
}

TEST(ServingSimTest, LatencyAtLeastServiceTime) {
  const std::vector<double> service = {2.0, 3.0, 4.0, 5.0};
  ServingStats s = SimulateServingWithServiceTimes(service, Opts(50));
  EXPECT_GE(s.p50_latency_ms, 2.0);
  EXPECT_LE(s.p50_latency_ms, s.p95_latency_ms);
  EXPECT_LE(s.p95_latency_ms, s.p99_latency_ms);
}

TEST(ServingSimTest, LightLoadNoBatching) {
  // Arrivals far apart relative to service time: every batch has one request
  // and latency approximately equals the single-request service time.
  const std::vector<double> service = {1.0, 1.2, 1.4, 1.6};
  ServingStats s = SimulateServingWithServiceTimes(service, Opts(/*qps=*/10));
  EXPECT_NEAR(s.mean_batch_size, 1.0, 0.05);
  EXPECT_NEAR(s.mean_latency_ms, 1.0, 0.2);
}

TEST(ServingSimTest, OverloadSaturatesAtBatchCapacity) {
  // Service 1ms regardless of batch size, max_batch 4 => capacity 4000 qps.
  const std::vector<double> service = {1.0, 1.0, 1.0, 1.0};
  ServingStats s = SimulateServingWithServiceTimes(service, Opts(/*qps=*/100000, 400));
  EXPECT_NEAR(s.mean_batch_size, 4.0, 0.1);
  EXPECT_NEAR(s.throughput_qps, 4000.0, 300.0);
}

TEST(ServingSimTest, FasterServiceHigherThroughputUnderOverload) {
  const std::vector<double> slow = {4.0, 4.4, 4.8, 5.2};
  const std::vector<double> fast = {2.0, 2.2, 2.4, 2.6};
  ServingStats s_slow = SimulateServingWithServiceTimes(slow, Opts(5000, 300));
  ServingStats s_fast = SimulateServingWithServiceTimes(fast, Opts(5000, 300));
  EXPECT_GT(s_fast.throughput_qps, s_slow.throughput_qps * 1.5);
  EXPECT_LT(s_fast.p95_latency_ms, s_slow.p95_latency_ms);
}

TEST(ServingSimTest, MaxBatchCapsBatchSize) {
  const std::vector<double> service = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  ServingOptions o = Opts(100000, 200, /*max_batch=*/3);
  ServingStats s = SimulateServingWithServiceTimes(service, o);
  EXPECT_LE(s.mean_batch_size, 3.0 + 1e-9);
}

TEST(ServingSimTest, RejectsEmptyServiceTimes) {
  EXPECT_THROW(SimulateServingWithServiceTimes({}, Opts(10)), CheckError);
}

TEST(ServingSimTest, SlaAdmissionShedsProvablyLateRequests) {
  // 1ms service, overload: queues grow without bound, so with a 5ms SLA most
  // requests become provably unmeetable at arrival and are shed instead of
  // queued — and the ones that are admitted keep their latency near the SLA.
  const std::vector<double> service = {1.0, 1.0, 1.0, 1.0};
  ServingOptions o = Opts(100000, 400);
  o.sla_ms = 5.0;
  const ServingStats s = SimulateServingWithServiceTimes(service, o);
  EXPECT_GT(s.num_shed, 0);
  EXPECT_EQ(s.num_completed + s.num_shed, 400);
  // Without an SLA the same overload drives p99 far beyond it (golden: 96ms);
  // admission keeps the served tail bounded by the optimistic-schedule slack.
  EXPECT_LT(s.p99_latency_ms, 10.0);
  // Determinism with shedding active.
  const ServingStats t = SimulateServingWithServiceTimes(service, o);
  EXPECT_EQ(t.num_shed, s.num_shed);
  EXPECT_DOUBLE_EQ(t.throughput_qps, s.throughput_qps);
}

TEST(ServingSimTest, GenerousSlaShedsNothingAndMatchesBaseline) {
  const std::vector<double> service = {1.0, 1.5, 1.8, 2.0};
  ServingOptions o = Opts(500);
  o.sla_ms = 1e9;
  const ServingStats with_sla = SimulateServingWithServiceTimes(service, o);
  const ServingStats baseline = SimulateServingWithServiceTimes(service, Opts(500));
  EXPECT_EQ(with_sla.num_shed, 0);
  EXPECT_DOUBLE_EQ(with_sla.throughput_qps, baseline.throughput_qps);
  EXPECT_DOUBLE_EQ(with_sla.p99_latency_ms, baseline.p99_latency_ms);
}

TEST(ServingSimTest, EndToEndWithRealEngine) {
  Rng rng(5);
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 2;
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts)});
  MultiTaskModel model(g, rng);
  EagerEngine engine(&model);
  ServingOptions so = Opts(200, 60, 4);
  so.calibration_runs = 1;
  ServingStats s = SimulateServing(engine, g.node(0).output_shape, so);
  EXPECT_GT(s.throughput_qps, 0.0);
  EXPECT_EQ(s.service_time_ms.size(), 4u);
  // Larger batches take no less wall time than batch 1.
  EXPECT_GE(s.service_time_ms[3], s.service_time_ms[0] * 0.8);
}

TEST(SchedulerCoreTest, CalibrateServiceTimesSharedPath) {
  Rng rng(5);
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 2;
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts)});
  MultiTaskModel model(g, rng);
  EagerEngine engine(&model);
  const ServiceTimeTable table =
      CalibrateServiceTimes(engine, g.node(0).output_shape, /*max_batch=*/3, /*repeats=*/1);
  EXPECT_EQ(table.max_batch(), 3);
  EXPECT_GT(table.MinMs(), 0.0);
  for (int b = 1; b <= 3; ++b) {
    EXPECT_GT(table.BatchMs(b), 0.0);
  }
}

}  // namespace
}  // namespace gmorph
