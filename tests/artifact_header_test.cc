// The shared "gmorph-<kind> vN" artifact header helper: formatting, strict
// per-spec checking (the loaders and linters), generic parsing (the driver's
// kind sniffer), and agreement with the legacy per-subsystem constants that
// remain for external references.
#include <gtest/gtest.h>

#include "src/common/artifact_header.h"
#include "src/kernels/tune_db.h"
#include "src/quant/recipe.h"

namespace gmorph {
namespace {

TEST(ArtifactHeaderTest, FormatsKindAndVersion) {
  EXPECT_EQ(ArtifactHeaderLine(kPlanArtifact), "gmorph-plan v1");
  EXPECT_EQ(ArtifactHeaderLine(kTuneDbArtifact), "gmorph-tunedb v1");
  EXPECT_EQ(ArtifactHeaderLine(kQuantRecipeArtifact), "gmorph-quant v1");
  EXPECT_EQ(ArtifactHeaderLine(kEvalCacheArtifact), "gmorph-evalcache v1");
  EXPECT_EQ(ArtifactHeaderLine(kCheckpointArtifact), "gmorph-checkpoint v1");
}

TEST(ArtifactHeaderTest, LegacyConstantsAgreeWithTheSharedSpecs) {
  // tune_db.h and recipe.h keep their own constants for external references;
  // they must stay byte-identical to what the shared helper emits.
  EXPECT_EQ(std::string(kernels::kTuneDbHeader), ArtifactHeaderLine(kTuneDbArtifact));
  EXPECT_EQ(std::string(quant::kQuantRecipeHeader), ArtifactHeaderLine(kQuantRecipeArtifact));
  EXPECT_EQ(ArtifactHeaderLine(kTuneDbArtifact).rfind(kernels::kTuneDbHeaderPrefix, 0), 0u);
  EXPECT_EQ(ArtifactHeaderLine(kQuantRecipeArtifact).rfind(quant::kQuantRecipeHeaderPrefix, 0),
            0u);
}

TEST(ArtifactHeaderTest, CheckAcceptsExactHeader) {
  EXPECT_EQ(CheckArtifactHeaderLine("gmorph-plan v1", kPlanArtifact), HeaderCheck::kOk);
  EXPECT_EQ(CheckArtifactHeaderLine("gmorph-checkpoint v1", kCheckpointArtifact),
            HeaderCheck::kOk);
}

TEST(ArtifactHeaderTest, CheckDistinguishesMissingFromWrongVersion) {
  EXPECT_EQ(CheckArtifactHeaderLine("", kPlanArtifact), HeaderCheck::kMissing);
  EXPECT_EQ(CheckArtifactHeaderLine("not a header", kPlanArtifact), HeaderCheck::kMissing);
  EXPECT_EQ(CheckArtifactHeaderLine("gmorph-tunedb v1", kPlanArtifact), HeaderCheck::kMissing);
  EXPECT_EQ(CheckArtifactHeaderLine("gmorph-plan v2", kPlanArtifact),
            HeaderCheck::kWrongVersion);
  EXPECT_EQ(CheckArtifactHeaderLine("gmorph-plan", kPlanArtifact), HeaderCheck::kWrongVersion);
  EXPECT_EQ(CheckArtifactHeaderLine("gmorph-plan vX", kPlanArtifact),
            HeaderCheck::kWrongVersion);
}

TEST(ArtifactHeaderTest, CheckRequiresAKindWordBoundary) {
  // "gmorph-plans v1" must not match the "gmorph-plan" spec.
  EXPECT_EQ(CheckArtifactHeaderLine("gmorph-plans v1", kPlanArtifact), HeaderCheck::kMissing);
}

TEST(ArtifactHeaderTest, ParseRecoversKindAndVersion) {
  std::string kind;
  int version = 0;
  ASSERT_TRUE(ParseArtifactHeaderLine("gmorph-plan v1", &kind, &version));
  EXPECT_EQ(kind, "gmorph-plan");
  EXPECT_EQ(version, 1);
  ASSERT_TRUE(ParseArtifactHeaderLine("gmorph-evalcache v12 trailing junk", &kind, &version));
  EXPECT_EQ(kind, "gmorph-evalcache");
  EXPECT_EQ(version, 12);
}

TEST(ArtifactHeaderTest, ParseRejectsNonHeaders) {
  std::string kind;
  int version = 0;
  EXPECT_FALSE(ParseArtifactHeaderLine("", &kind, &version));
  EXPECT_FALSE(ParseArtifactHeaderLine("benchmark = 1", &kind, &version));
  EXPECT_FALSE(ParseArtifactHeaderLine("gmorph-plan", &kind, &version));
  EXPECT_FALSE(ParseArtifactHeaderLine("gmorph-plan vX", &kind, &version));
  EXPECT_FALSE(ParseArtifactHeaderLine("plan v1", &kind, &version));
}

}  // namespace
}  // namespace gmorph
