// Tests for the FusedEngine execution planner: eager/fused parity across the
// model zoo and mutated graphs, bitwise determinism, branch-parallel
// scheduling, and the zero-allocation steady state of the static memory plan.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/parallel_for.h"
#include "src/core/model_parser.h"
#include "src/core/mutation.h"
#include "src/models/zoo.h"
#include "src/runtime/engine.h"
#include "src/runtime/fused_engine.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

// Gaussian images for vision models, integer token ids for BERT.
Tensor InputFor(const ModelSpec& spec, int64_t batch, Rng& rng) {
  const Shape shape = spec.input_shape.WithBatch(batch);
  if (spec.input_shape.Rank() == 1) {
    Tensor x = Tensor::Zeros(shape);
    for (int64_t i = 0; i < x.size(); ++i) {
      x.at(i) = std::floor(rng.NextDouble() * 8.0);
    }
    return x;
  }
  return Tensor::RandomGaussian(shape, rng);
}

struct ZooCase {
  std::string name;
  ModelSpec spec;
};

std::vector<ZooCase> ZooCases() {
  VisionModelOptions v;
  v.base_width = 4;
  v.classes = 3;
  TransformerModelOptions vit = ViTBaseOptions();
  vit.classes = 3;
  TransformerModelOptions bert = BertBaseOptions();
  bert.classes = 2;
  return {
      {"vgg11", MakeVgg11(v)},       {"vgg13", MakeVgg13(v)},
      {"vgg16", MakeVgg16(v)},       {"resnet18", MakeResNet18(v)},
      {"resnet34", MakeResNet34(v)}, {"vit", MakeViT("vit", vit)},
      {"bert", MakeBert("bert", bert)},
  };
}

class EngineZooParity : public ::testing::TestWithParam<ZooCase> {};

TEST_P(EngineZooParity, FusedMatchesEager) {
  const ZooCase& c = GetParam();
  Rng rng(11);
  AbsGraph g = ParseModelSpecs({c.spec});
  MultiTaskModel model(g, rng);
  auto eager = MakeEngine(EngineKind::kEager, &model);
  auto fused = MakeEngine(EngineKind::kFused, &model);
  const Tensor x = InputFor(c.spec, /*batch=*/2, rng);
  std::vector<Tensor> eager_out = eager->Run(x);
  std::vector<Tensor> fused_out = fused->Run(x);
  ASSERT_EQ(eager_out.size(), fused_out.size());
  for (size_t t = 0; t < eager_out.size(); ++t) {
    EXPECT_LT(testing::MaxDiff(eager_out[t], fused_out[t]), 1e-4f) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllZoo, EngineZooParity, ::testing::ValuesIn(ZooCases()),
                         [](const ::testing::TestParamInfo<ZooCase>& info) {
                           return info.param.name;
                         });

TEST(EnginePlanTest, ResidualBlocksLowerFully) {
  Rng rng(12);
  VisionModelOptions opts;
  opts.base_width = 4;
  AbsGraph g = ParseModelSpecs({MakeResNet18(opts)});
  MultiTaskModel model(g, rng);
  FusedEngine fused(&model);
  // Every convolution — stem, both block convs, projection shortcuts — is
  // folded into a plan step; no residual block falls back to Module::Forward.
  EXPECT_EQ(fused.num_fallback_modules(), 0);
  EXPECT_GT(fused.num_fused_convs(), 16);  // 1 stem + 8 blocks * 2 + projections
}

TEST(EnginePlanTest, IdentityRescaleBecomesAlias) {
  Rng rng(13);
  VisionModelOptions opts;
  opts.base_width = 4;
  // Splice an identity rescale (equal in/out shapes) into a VGG chain — the
  // planner must lower it to a buffer alias, not a copy step, and downstream
  // blocks must read through the alias.
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts), MakeVgg11(opts)});
  const int first = g.node(g.root()).children[0];
  const int second = g.node(first).children[0];
  const AbsNode& first_node = g.node(first);
  const int rescale = g.AddNode(first, first_node.task_id, first_node.op_id,
                                RescaleSpec(first_node.output_shape, first_node.output_shape));
  g.Reparent(second, rescale);
  g.Validate();
  MultiTaskModel model(g, rng);
  FusedEngine fused(&model);
  EXPECT_GE(fused.num_eliminated(), 1);

  EagerEngine eager(&model);
  const Tensor x = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);
  std::vector<Tensor> eager_out = eager.Run(x);
  std::vector<Tensor> fused_out = fused.Run(x);
  ASSERT_EQ(eager_out.size(), fused_out.size());
  for (size_t t = 0; t < eager_out.size(); ++t) {
    EXPECT_LT(testing::MaxDiff(eager_out[t], fused_out[t]), 1e-4f);
  }
}

TEST(EnginePlanTest, MutatedGraphWithRescalesMatchesEager) {
  Rng rng(14);
  VisionModelOptions narrow;
  narrow.base_width = 4;
  VisionModelOptions wide;
  wide.base_width = 8;
  // Mixed-width bundle so sampled mutations insert non-identity rescale
  // adapters (channel/spatial mismatches) alongside residual blocks.
  AbsGraph base = ParseModelSpecs({MakeVgg11(narrow), MakeResNet18(wide)});
  std::optional<AbsGraph> mutated = SampleMutatePass(base, 3, ShapeSimilarity::kAny, rng);
  ASSERT_TRUE(mutated.has_value());
  MultiTaskModel model(*mutated, rng);
  auto eager = MakeEngine(EngineKind::kEager, &model);
  auto fused = MakeEngine(EngineKind::kFused, &model);
  const Tensor x = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);
  std::vector<Tensor> eager_out = eager->Run(x);
  std::vector<Tensor> fused_out = fused->Run(x);
  ASSERT_EQ(eager_out.size(), fused_out.size());
  for (size_t t = 0; t < eager_out.size(); ++t) {
    EXPECT_LT(testing::MaxDiff(eager_out[t], fused_out[t]), 1e-4f);
  }
}

TEST(EnginePlanTest, BranchParallelMatchesSerialBitwise) {
  Rng rng(15);
  VisionModelOptions opts;
  opts.base_width = 4;
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts), MakeVgg13(opts), MakeResNet18(opts)});
  MultiTaskModel model(g, rng);
  FusedEngine::Options serial_opts;
  serial_opts.branch_parallel = false;
  FusedEngine parallel_engine(&model);
  FusedEngine serial_engine(&model, serial_opts);
  const Tensor x = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);
  std::vector<Tensor> par = parallel_engine.Run(x);
  std::vector<Tensor> ser = serial_engine.Run(x);
  ASSERT_EQ(par.size(), ser.size());
  for (size_t t = 0; t < par.size(); ++t) {
    EXPECT_EQ(testing::MaxDiff(par[t], ser[t]), 0.0f);
  }
}

TEST(EnginePlanDeterminismTest, RunIsBitwiseStableAcrossCallsAndThreadCounts) {
  Rng rng(16);
  VisionModelOptions opts;
  opts.base_width = 4;
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts), MakeResNet18(opts)});
  MultiTaskModel model(g, rng);
  FusedEngine fused(&model);
  const Tensor x = Tensor::RandomGaussian(Shape{3, 3, 32, 32}, rng);

  const int restore_threads = KernelThreads();
  std::vector<Tensor> baseline;
  for (int threads : {1, 2, 4}) {
    SetKernelThreads(threads);
    for (int repeat = 0; repeat < 2; ++repeat) {
      std::vector<Tensor> out = fused.Run(x);
      if (baseline.empty()) {
        for (Tensor& t : out) {
          baseline.push_back(t.Clone());  // outputs alias engine buffers
        }
        continue;
      }
      ASSERT_EQ(out.size(), baseline.size());
      for (size_t t = 0; t < out.size(); ++t) {
        EXPECT_EQ(testing::MaxDiff(out[t], baseline[t]), 0.0f)
            << "threads=" << threads << " repeat=" << repeat;
      }
    }
  }
  SetKernelThreads(restore_threads);
}

TEST(EnginePlanTest, SteadyStateRunAllocatesNoTensorStorage) {
  Rng rng(17);
  VisionModelOptions opts;
  opts.base_width = 4;
  // Fully-lowerable bundle (convs, pools, flatten, linears — no fallbacks):
  // after the first Run binds each batch size, Run must not touch the tensor
  // allocator again.
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts), MakeVgg13(opts)});
  MultiTaskModel model(g, rng);
  FusedEngine fused(&model);
  EXPECT_EQ(fused.num_fallback_modules(), 0);

  const Tensor x1 = Tensor::RandomGaussian(Shape{1, 3, 32, 32}, rng);
  const Tensor x4 = Tensor::RandomGaussian(Shape{4, 3, 32, 32}, rng);
  const int64_t unbound = Tensor::TotalAllocatedBytes();
  fused.Run(x1);  // first sight of each batch size allocates its binding
  fused.Run(x4);
  EXPECT_GT(Tensor::TotalAllocatedBytes(), unbound);

  const int64_t bound = Tensor::TotalAllocatedBytes();
  for (int i = 0; i < 3; ++i) {
    fused.Run(x1);
    fused.Run(x4);
  }
  EXPECT_EQ(Tensor::TotalAllocatedBytes(), bound);
}

TEST(EnginePlanTest, PlanReusesBuffersAndProfiles) {
  Rng rng(18);
  VisionModelOptions opts;
  opts.base_width = 4;
  AbsGraph g = ParseModelSpecs({MakeVgg16(opts)});
  MultiTaskModel model(g, rng);
  FusedEngine fused(&model);
  // Liveness coloring must fold the 13-conv chain into fewer buffers than
  // values (ping-pong within each size class).
  EXPECT_LT(fused.num_buffers(), fused.num_steps());
  EXPECT_FALSE(fused.DumpPlan().empty());

  const Tensor x = Tensor::RandomGaussian(Shape{1, 3, 32, 32}, rng);
  fused.Run(x);
  fused.Run(x);
  int64_t total_calls = 0;
  for (const auto& step : fused.Profile()) {
    EXPECT_EQ(step.calls, 2);
    total_calls += step.calls;
  }
  EXPECT_EQ(total_calls, 2 * fused.num_steps());
  fused.ResetProfile();
  for (const auto& step : fused.Profile()) {
    EXPECT_EQ(step.calls, 0);
    EXPECT_EQ(step.total_ms, 0.0);
  }
}

}  // namespace
}  // namespace gmorph
