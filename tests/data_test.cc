#include "src/data/benchmarks.h"

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/data/eval.h"
#include "src/data/synthetic.h"
#include "src/data/teacher.h"
#include "src/models/zoo.h"

namespace gmorph {
namespace {

BenchmarkScale TinyScale() {
  BenchmarkScale s;
  s.train_size = 48;
  s.test_size = 32;
  s.cnn_width = 4;
  return s;
}

TEST(SyntheticVisionTest, ShapesAndLabels) {
  Rng rng(1);
  std::vector<VisionTaskSpec> tasks(2);
  tasks[0].num_classes = 3;
  tasks[1].num_classes = 4;
  tasks[1].metric = MetricKind::kMeanAveragePrecision;
  VisionDataOptions opts;
  opts.image_size = 16;
  VisionDatasetPair pair = GenerateVisionData(20, 10, tasks, opts, rng);

  EXPECT_EQ(pair.train.inputs.shape().dims(), (std::vector<int64_t>{20, 3, 16, 16}));
  EXPECT_EQ(pair.test.size(), 10);
  ASSERT_EQ(pair.train.tasks.size(), 2u);
  for (int label : pair.train.tasks[0].class_labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
  // Multi-label rows have at least one positive.
  const Tensor& mh = pair.train.tasks[1].multi_hot;
  ASSERT_EQ(mh.shape().dims(), (std::vector<int64_t>{20, 4}));
  for (int64_t r = 0; r < 20; ++r) {
    float row_sum = 0.0f;
    for (int64_t c = 0; c < 4; ++c) {
      row_sum += mh.at(r * 4 + c);
    }
    EXPECT_GE(row_sum, 1.0f);
  }
}

TEST(SyntheticVisionTest, DeterministicGivenSeed) {
  std::vector<VisionTaskSpec> tasks(1);
  VisionDataOptions opts;
  opts.image_size = 8;
  Rng rng_a(7);
  Rng rng_b(7);
  VisionDatasetPair a = GenerateVisionData(5, 3, tasks, opts, rng_a);
  VisionDatasetPair b = GenerateVisionData(5, 3, tasks, opts, rng_b);
  for (int64_t i = 0; i < a.train.inputs.size(); ++i) {
    EXPECT_EQ(a.train.inputs.at(i), b.train.inputs.at(i));
  }
  EXPECT_EQ(a.train.tasks[0].class_labels, b.train.tasks[0].class_labels);
}

TEST(SyntheticTextTest, TokensInVocabAndBalancedLabels) {
  Rng rng(3);
  std::vector<TextTaskSpec> tasks(2);
  tasks[0].metric = MetricKind::kMatthews;
  TextDataOptions opts;
  TextDatasetPair pair = GenerateTextData(200, 50, tasks, opts, rng);
  for (int64_t i = 0; i < pair.train.inputs.size(); ++i) {
    EXPECT_GE(pair.train.inputs.at(i), 0.0f);
    EXPECT_LT(pair.train.inputs.at(i), static_cast<float>(opts.vocab));
  }
  int positives = 0;
  for (int label : pair.train.tasks[1].class_labels) {
    positives += label;
  }
  // Majority-sign labels should be roughly balanced.
  EXPECT_GT(positives, 40);
  EXPECT_LT(positives, 160);
}

TEST(DatasetTest, BatchSlicing) {
  Rng rng(4);
  std::vector<VisionTaskSpec> tasks(1);
  VisionDataOptions opts;
  opts.image_size = 8;
  VisionDatasetPair pair = GenerateVisionData(10, 4, tasks, opts, rng);
  Tensor batch = pair.train.InputBatch(3, 4);
  EXPECT_EQ(batch.shape().dims(), (std::vector<int64_t>{4, 3, 8, 8}));
  // Row 0 of the batch equals row 3 of the dataset.
  const int64_t row = 3 * 8 * 8;
  for (int64_t i = 0; i < row; ++i) {
    EXPECT_EQ(batch.at(i), pair.train.inputs.at(3 * row + i));
  }
  const std::vector<int> labels = pair.train.LabelBatch(0, 3, 4);
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], pair.train.tasks[0].class_labels[3]);
}

class BenchmarkParamTest : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkParamTest, WellFormed) {
  const int index = GetParam();
  BenchmarkDef def = MakeBenchmark(index, TinyScale(), 123);
  EXPECT_EQ(def.id, "B" + std::to_string(index));
  EXPECT_GE(def.tasks.size(), 2u);
  EXPECT_EQ(def.train.tasks.size(), def.tasks.size());
  EXPECT_EQ(def.train.size(), TinyScale().train_size);
  // Each task's model consumes the dataset input shape and emits its classes.
  for (const BenchmarkTask& task : def.tasks) {
    EXPECT_EQ(task.model.input_shape, def.train.inputs.shape().WithoutBatch());
    EXPECT_EQ(task.model.OutputShape()[0], task.num_classes);
  }
  // All models in one benchmark share the input.
  for (size_t t = 1; t < def.tasks.size(); ++t) {
    EXPECT_EQ(def.tasks[t].model.input_shape, def.tasks[0].model.input_shape);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkParamTest, ::testing::Range(1, 8));

TEST(BenchmarkTest, OutOfRangeThrows) {
  EXPECT_THROW(MakeBenchmark(0, TinyScale(), 1), CheckError);
  EXPECT_THROW(MakeBenchmark(8, TinyScale(), 1), CheckError);
}

TEST(TeacherTest, LearnsAboveChance) {
  Rng rng(9);
  std::vector<VisionTaskSpec> tasks(1);
  tasks[0].num_classes = 4;
  VisionDataOptions opts;
  VisionDatasetPair data = GenerateVisionData(96, 64, tasks, opts, rng);
  VisionModelOptions model_opts;
  model_opts.base_width = 4;
  model_opts.classes = 4;
  TaskModel model(MakeVgg11(model_opts), rng);
  TeacherTrainOptions train_opts;
  train_opts.epochs = 4;
  const double score = TrainTeacher(model, data.train, data.test, 0, train_opts);
  EXPECT_GT(score, 0.5);  // chance = 0.25
}

TEST(EvalTest, ComputeMetricDispatch) {
  TaskLabels acc;
  acc.metric = MetricKind::kAccuracy;
  acc.class_labels = {0, 1};
  Tensor logits = Tensor::FromVector(Shape{2, 2}, {1, 0, 0, 1});
  EXPECT_DOUBLE_EQ(ComputeMetric(logits, acc), 1.0);

  TaskLabels mcc;
  mcc.metric = MetricKind::kMatthews;
  mcc.class_labels = {0, 1};
  EXPECT_DOUBLE_EQ(ComputeMetric(logits, mcc), 1.0);

  TaskLabels map_labels;
  map_labels.metric = MetricKind::kMeanAveragePrecision;
  map_labels.multi_hot = Tensor::FromVector(Shape{2, 2}, {1, 0, 0, 1});
  EXPECT_NEAR(ComputeMetric(logits, map_labels), 1.0, 1e-9);
}

}  // namespace
}  // namespace gmorph
