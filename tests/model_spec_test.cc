#include "src/models/model_spec.h"

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/models/task_model.h"
#include "src/models/zoo.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

// All block specs used across the zoo, for parameterized consistency checks.
std::vector<BlockSpec> RepresentativeSpecs() {
  return {
      ConvReLUSpec(3, 8),
      ConvBNReLUSpec(3, 8),
      ResidualSpec(8, 8, 1),
      ResidualSpec(8, 16, 2),
      MaxPoolSpec(),
      GlobalAvgPoolSpec(),
      FlattenSpec(),
      LinearReLUSpec(32, 16),
      HeadSpec(16, 4),
      PatchEmbedSpec(3, 16, 8, 12),
      TokenEmbedSpec(32, 8, 12),
      TransformerSpec(12, 3, 2),
      MeanPoolTokensSpec(),
      RescaleSpec(Shape{8, 4, 4}, Shape{16, 8, 8}),
      RescaleSpec(Shape{8, 4, 4}, Shape{8, 4, 4}),
      RescaleSpec(Shape{8, 12}, Shape{4, 16}),
  };
}

// Per-sample input shape each representative spec accepts.
Shape InputFor(const BlockSpec& spec) {
  switch (spec.type) {
    case BlockType::kConvReLU:
    case BlockType::kConvBNReLU:
    case BlockType::kResidual:
      return Shape{spec.in_channels, 8, 8};
    case BlockType::kMaxPool:
    case BlockType::kGlobalAvgPool:
    case BlockType::kFlatten:
      return Shape{4, 8, 8};
    case BlockType::kLinearReLU:
    case BlockType::kHead:
      return Shape{spec.in_features};
    case BlockType::kPatchEmbed:
      return Shape{spec.in_channels, spec.image_size, spec.image_size};
    case BlockType::kTokenEmbed:
      return Shape{spec.seq_len};
    case BlockType::kTransformer:
      return Shape{6, spec.dim};
    case BlockType::kMeanPoolTokens:
      return Shape{6, 12};
    case BlockType::kRescale:
      return spec.rescale_in;
  }
  return {};
}

class BlockSpecParamTest : public ::testing::TestWithParam<BlockSpec> {};

TEST_P(BlockSpecParamTest, CapacityMatchesInstantiatedModule) {
  const BlockSpec spec = GetParam();
  Rng rng(1);
  std::unique_ptr<Module> module = MakeModule(spec, rng);
  EXPECT_EQ(BlockCapacity(spec), module->ParamCount()) << spec.ToString();
}

TEST_P(BlockSpecParamTest, OutShapeMatchesActualForward) {
  const BlockSpec spec = GetParam();
  Rng rng(2);
  std::unique_ptr<Module> module = MakeModule(spec, rng);
  const Shape in = InputFor(spec);
  Tensor x = spec.type == BlockType::kTokenEmbed
                 ? Tensor::Zeros(in.WithBatch(2))
                 : Tensor::RandomGaussian(in.WithBatch(2), rng);
  Tensor y = module->Forward(x, /*training=*/true);
  EXPECT_EQ(y.shape().WithoutBatch(), BlockOutShape(spec, in)) << spec.ToString();
}

TEST_P(BlockSpecParamTest, FlopsNonNegative) {
  const BlockSpec spec = GetParam();
  EXPECT_GE(BlockFlops(spec, InputFor(spec)), 0) << spec.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllBlocks, BlockSpecParamTest,
                         ::testing::ValuesIn(RepresentativeSpecs()));

TEST(BlockSpecTest, SpecEqualsDiscriminates) {
  EXPECT_TRUE(SpecEquals(ConvReLUSpec(3, 8), ConvReLUSpec(3, 8)));
  EXPECT_FALSE(SpecEquals(ConvReLUSpec(3, 8), ConvReLUSpec(3, 16)));
  EXPECT_FALSE(SpecEquals(ConvReLUSpec(3, 8), ConvBNReLUSpec(3, 8)));
  EXPECT_FALSE(SpecEquals(HeadSpec(8, 4), HeadSpec(8, 5)));
}

TEST(BlockSpecTest, ShapeMismatchThrows) {
  EXPECT_THROW(BlockOutShape(ConvReLUSpec(4, 8), Shape{3, 8, 8}), CheckError);
  EXPECT_THROW(BlockOutShape(TransformerSpec(16, 4), Shape{6, 12}), CheckError);
  EXPECT_THROW(BlockOutShape(RescaleSpec(Shape{2, 4, 4}, Shape{2, 8, 8}), Shape{3, 4, 4}),
               CheckError);
}

struct ZooCase {
  std::string name;
  ModelSpec spec;
  int64_t expected_out;
};

std::vector<ZooCase> ZooCases() {
  VisionModelOptions v;
  v.classes = 5;
  TransformerModelOptions vit = ViTBaseOptions();
  vit.classes = 7;
  TransformerModelOptions bert = BertBaseOptions();
  bert.classes = 2;
  return {
      {"vgg11", MakeVgg11(v), 5},     {"vgg13", MakeVgg13(v), 5},
      {"vgg16", MakeVgg16(v), 5},     {"resnet18", MakeResNet18(v), 5},
      {"resnet34", MakeResNet34(v), 5}, {"vit", MakeViT("vit", vit), 7},
      {"bert", MakeBert("bert", bert), 2},
  };
}

class ZooParamTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooParamTest, SpecOutputShapeIsClassCount) {
  const ZooCase& c = GetParam();
  EXPECT_EQ(c.spec.OutputShape().dims(), (std::vector<int64_t>{c.expected_out}));
}

TEST_P(ZooParamTest, InstantiatedModelRunsAndMatchesSpec) {
  const ZooCase& c = GetParam();
  Rng rng(5);
  TaskModel model(c.spec, rng);
  EXPECT_EQ(model.num_blocks(), c.spec.blocks.size());
  const bool token_input = c.spec.input_shape.Rank() == 1;
  Tensor x = token_input ? Tensor::Zeros(c.spec.input_shape.WithBatch(2))
                         : Tensor::RandomGaussian(c.spec.input_shape.WithBatch(2), rng);
  Tensor y = model.Forward(x, /*training=*/false);
  EXPECT_EQ(y.shape().dims(), (std::vector<int64_t>{2, c.expected_out}));
  // Capacity accounting agrees with the live parameters.
  int64_t live = 0;
  for (Parameter* p : model.Parameters()) {
    live += p->value.size();
  }
  EXPECT_EQ(live, c.spec.TotalCapacity());
  EXPECT_GT(c.spec.TotalFlops(), 0);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooParamTest, ::testing::ValuesIn(ZooCases()),
                         [](const ::testing::TestParamInfo<ZooCase>& info) {
                           return info.param.name;
                         });

TEST(ZooTest, DepthOrdering) {
  VisionModelOptions v;
  EXPECT_LT(MakeVgg11(v).blocks.size(), MakeVgg13(v).blocks.size());
  EXPECT_LT(MakeVgg13(v).blocks.size(), MakeVgg16(v).blocks.size());
  EXPECT_LT(MakeResNet18(v).blocks.size(), MakeResNet34(v).blocks.size());
  EXPECT_LT(MakeResNet18(v).TotalFlops(), MakeResNet34(v).TotalFlops());
  EXPECT_LT(MakeViT("b", ViTBaseOptions()).TotalFlops(),
            MakeViT("l", ViTLargeOptions()).TotalFlops());
  EXPECT_LT(MakeBert("b", BertBaseOptions()).TotalCapacity(),
            MakeBert("l", BertLargeOptions()).TotalCapacity());
}

TEST(TaskModelTest, WeightExportImportRoundTrip) {
  Rng rng(6);
  VisionModelOptions v;
  v.classes = 3;
  TaskModel a(MakeVgg11(v), rng);
  TaskModel b(MakeVgg11(v), rng);
  b.ImportWeights(a.ExportWeights());
  Tensor x = Tensor::RandomGaussian(Shape{1, 3, 32, 32}, rng);
  Tensor ya = a.Forward(x, false);
  Tensor yb = b.Forward(x, false);
  EXPECT_LT(testing::MaxDiff(ya, yb), 1e-5f);
}

}  // namespace
}  // namespace gmorph
