#include "src/common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace gmorph {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextIntInRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.NextInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(RngTest, NextIntRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.NextIntRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng fork = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == fork.NextU64();
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace gmorph
