#include "src/core/abs_graph.h"

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/core/model_parser.h"
#include "src/models/zoo.h"

namespace gmorph {
namespace {

// Two tiny chains sharing the root, for structural tests.
AbsGraph TwoChainGraph() {
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 3;
  ModelSpec a = MakeVgg11(opts);
  opts.classes = 2;
  ModelSpec b = MakeVgg11(opts);
  return ParseModelSpecs({a, b});
}

TEST(AbsGraphTest, RootOnlyGraph) {
  AbsGraph g = AbsGraph::WithRoot(Shape{3, 8, 8}, 2);
  EXPECT_EQ(g.size(), 1);
  EXPECT_TRUE(g.node(0).IsRoot());
  EXPECT_EQ(g.HeadOfTask(0), -1);
  EXPECT_EQ(g.TotalCapacity(), 0);
}

TEST(AbsGraphTest, ParserBuildsOneChainPerTask) {
  AbsGraph g = TwoChainGraph();
  g.Validate();
  EXPECT_EQ(g.num_tasks(), 2);
  // Root has one child per task.
  EXPECT_EQ(g.node(g.root()).children.size(), 2u);
  // Walk each chain: op_ids strictly increase.
  for (int t = 0; t < 2; ++t) {
    int cur = g.HeadOfTask(t);
    ASSERT_GE(cur, 0);
    int prev_op = g.node(cur).op_id;
    cur = g.node(cur).parent;
    while (cur != g.root()) {
      EXPECT_LT(g.node(cur).op_id, prev_op);
      prev_op = g.node(cur).op_id;
      EXPECT_EQ(g.node(cur).task_id, t);
      cur = g.node(cur).parent;
    }
  }
}

TEST(AbsGraphTest, ParserChecksInputShapes) {
  VisionModelOptions a;
  a.image_size = 32;
  VisionModelOptions b;
  b.image_size = 64;
  EXPECT_THROW(ParseModelSpecs({MakeVgg11(a), MakeVgg11(b)}), CheckError);
}

TEST(AbsGraphTest, AddNodeComputesShapes) {
  AbsGraph g = AbsGraph::WithRoot(Shape{3, 8, 8}, 1);
  const int id = g.AddNode(g.root(), 0, 0, ConvReLUSpec(3, 4));
  EXPECT_EQ(g.node(id).input_shape, (Shape{3, 8, 8}));
  EXPECT_EQ(g.node(id).output_shape, (Shape{4, 8, 8}));
  EXPECT_EQ(g.node(id).capacity, BlockCapacity(ConvReLUSpec(3, 4)));
  EXPECT_THROW(g.AddNode(id, 0, 1, ConvReLUSpec(8, 4)), CheckError);  // channel mismatch
}

TEST(AbsGraphTest, TopologicalOrderParentsFirst) {
  AbsGraph g = TwoChainGraph();
  const std::vector<int> order = g.TopologicalOrder();
  EXPECT_EQ(order.size(), static_cast<size_t>(g.size()));
  std::vector<int> position(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    position[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  for (const AbsNode& n : g.nodes()) {
    if (!n.IsRoot()) {
      EXPECT_LT(position[static_cast<size_t>(n.parent)], position[static_cast<size_t>(n.id)]);
    }
  }
}

TEST(AbsGraphTest, IsAncestorAndTasksServed) {
  AbsGraph g = TwoChainGraph();
  const int head0 = g.HeadOfTask(0);
  EXPECT_TRUE(g.IsAncestor(g.root(), head0));
  EXPECT_TRUE(g.IsAncestor(head0, head0));
  EXPECT_FALSE(g.IsAncestor(head0, g.root()));
  EXPECT_EQ(g.TasksServed(g.root()), (std::set<int>{0, 1}));
  EXPECT_EQ(g.TasksServed(head0), (std::set<int>{0}));
  const int first0 = g.node(g.root()).children[0];
  EXPECT_EQ(g.TasksServed(first0).size(), 1u);
}

TEST(AbsGraphTest, ReparentAndGarbageCollect) {
  AbsGraph g = TwoChainGraph();
  // Re-parent task 1's head under task 0's head's parent: task 1's whole old
  // chain becomes dead.
  const int head1 = g.HeadOfTask(1);
  const int head0 = g.HeadOfTask(0);
  const int size_before = g.size();
  g.Reparent(head1, g.node(head0).parent);
  const int removed = g.GarbageCollect();
  EXPECT_GT(removed, 0);
  EXPECT_EQ(g.size(), size_before - removed);
  g.Validate();
  // Both heads still exist.
  EXPECT_GE(g.HeadOfTask(0), 0);
  EXPECT_GE(g.HeadOfTask(1), 0);
}

TEST(AbsGraphTest, ReparentCycleRejected) {
  AbsGraph g = TwoChainGraph();
  const int head0 = g.HeadOfTask(0);
  const int mid = g.node(head0).parent;
  EXPECT_THROW(g.Reparent(mid, head0), CheckError);
}

TEST(AbsGraphTest, ShapeDictionaryGroupsByInputShape) {
  AbsGraph g = TwoChainGraph();
  const auto dict = g.ShapeDictionary();
  int total = 0;
  for (const auto& [shape, ids] : dict) {
    total += static_cast<int>(ids.size());
    for (int id : ids) {
      EXPECT_EQ(g.node(id).input_shape, shape);
    }
  }
  EXPECT_EQ(total, g.size() - 1);  // every non-root node appears exactly once
  // Identical architectures: the raw-input shape is consumed by both stems.
  EXPECT_EQ(dict.at(Shape{3, 32, 32}).size(), 2u);
}

TEST(AbsGraphTest, SignatureAccounting) {
  AbsGraph g = TwoChainGraph();
  CapacitySignature sig = g.Signature();
  // No sharing yet: all capacity is task-specific, none shared.
  EXPECT_EQ(sig.shared_total, 0);
  EXPECT_EQ(sig.total, sig.per_task_specific[0] + sig.per_task_specific[1]);
  EXPECT_EQ(sig.per_task_total[0], sig.per_task_specific[0]);

  // After sharing everything up to the heads, shared capacity appears.
  const int head1 = g.HeadOfTask(1);
  g.Reparent(head1, g.node(g.HeadOfTask(0)).parent);
  g.GarbageCollect();
  CapacitySignature shared = g.Signature();
  EXPECT_GT(shared.shared_total, 0);
  EXPECT_LT(shared.total, sig.total);
  EXPECT_TRUE(shared.MoreAggressiveThan(sig));
  EXPECT_FALSE(sig.MoreAggressiveThan(shared));
}

TEST(CapacitySignatureTest, PartialOrderProperties) {
  CapacitySignature a;
  a.total = 100;
  a.per_task_total = {60, 70};
  a.per_task_specific = {30, 40};
  a.shared_total = 30;
  // Reflexive (non-strict order).
  EXPECT_TRUE(a.MoreAggressiveThan(a));
  CapacitySignature b = a;
  b.total = 90;
  b.per_task_specific = {20, 40};
  b.shared_total = 40;
  EXPECT_TRUE(b.MoreAggressiveThan(a));
  EXPECT_FALSE(a.MoreAggressiveThan(b));
  // Mixed: lower total but lower shared -> incomparable.
  CapacitySignature c = a;
  c.total = 80;
  c.shared_total = 10;
  EXPECT_FALSE(c.MoreAggressiveThan(a));
  // Different task counts never compare.
  CapacitySignature d;
  d.per_task_total = {1};
  d.per_task_specific = {1};
  EXPECT_FALSE(d.MoreAggressiveThan(a));
}

TEST(AbsGraphTest, FingerprintDetectsStructuralChange) {
  AbsGraph g = TwoChainGraph();
  const std::string fp = g.Fingerprint();
  AbsGraph copy = g;
  EXPECT_EQ(copy.Fingerprint(), fp);
  copy.Reparent(copy.HeadOfTask(1), copy.node(copy.HeadOfTask(0)).parent);
  copy.GarbageCollect();
  EXPECT_NE(copy.Fingerprint(), fp);
}

TEST(AbsGraphTest, ToStringContainsAllNodes) {
  AbsGraph g = TwoChainGraph();
  const std::string s = g.ToString();
  EXPECT_NE(s.find("input"), std::string::npos);
  EXPECT_NE(s.find("Head"), std::string::npos);
  EXPECT_NE(s.find("ConvReLU"), std::string::npos);
}

TEST(AbsGraphTest, FlopsMatchesSpecSum) {
  VisionModelOptions opts;
  opts.base_width = 4;
  ModelSpec spec = MakeVgg11(opts);
  AbsGraph g = ParseModelSpecs({spec});
  EXPECT_EQ(g.TotalFlops(), spec.TotalFlops());
  EXPECT_EQ(g.TotalCapacity(), spec.TotalCapacity());
}

}  // namespace
}  // namespace gmorph
