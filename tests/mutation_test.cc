// Property tests for shareable-pair discovery and graph mutation: whatever
// random mutation sequence is applied, the graph must stay a valid multi-task
// tree, keep every head, and never gain non-rescale capacity.
#include "src/core/mutation.h"

#include <gtest/gtest.h>

#include "src/core/model_parser.h"
#include "src/core/shareable.h"
#include "src/models/zoo.h"

namespace gmorph {
namespace {

AbsGraph B1LikeGraph() {
  VisionModelOptions opts;
  opts.base_width = 4;
  std::vector<ModelSpec> specs;
  for (int classes : {5, 2, 4}) {
    opts.classes = classes;
    specs.push_back(MakeVgg13(opts));
  }
  return ParseModelSpecs(specs);
}

AbsGraph HeterogeneousGraph() {
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 8;
  ModelSpec a = MakeResNet34(opts);
  opts.classes = 5;
  ModelSpec b = MakeVgg16(opts);
  return ParseModelSpecs({a, b});
}

TEST(ShapesSimilarTest, Definition) {
  EXPECT_TRUE(ShapesSimilar(Shape{8, 16, 16}, Shape{8, 4, 4}));    // channel match
  EXPECT_TRUE(ShapesSimilar(Shape{8, 16, 16}, Shape{4, 16, 8}));   // height match
  EXPECT_TRUE(ShapesSimilar(Shape{8, 16, 16}, Shape{8, 16, 16}));  // identical
  EXPECT_FALSE(ShapesSimilar(Shape{8, 16, 16}, Shape{4, 8, 32}));  // nothing matches
  EXPECT_FALSE(ShapesSimilar(Shape{8, 16}, Shape{8, 16, 16}));     // rank differs
}

TEST(RescaleFeasibleTest, RankRules) {
  EXPECT_TRUE(RescaleFeasible(Shape{4, 8, 8}, Shape{2, 4, 4}));
  EXPECT_TRUE(RescaleFeasible(Shape{4, 16}, Shape{8, 32}));
  EXPECT_TRUE(RescaleFeasible(Shape{64}, Shape{64}));    // identical rank-1 ok
  EXPECT_FALSE(RescaleFeasible(Shape{64}, Shape{128}));  // rank-1 mismatch
  EXPECT_FALSE(RescaleFeasible(Shape{4, 8, 8}, Shape{4, 8}));
}

TEST(ShareableTest, PairsAreValidAndDirected) {
  AbsGraph g = B1LikeGraph();
  const auto pairs = FindShareablePairs(g, ShapeSimilarity::kSimilar);
  EXPECT_FALSE(pairs.empty());
  for (const SharePair& pair : pairs) {
    EXPECT_TRUE(PairValid(g, pair, ShapeSimilarity::kSimilar));
    EXPECT_NE(pair.host, pair.guest);
    EXPECT_TRUE(ShapesSimilar(g.node(pair.host).input_shape, g.node(pair.guest).input_shape));
  }
}

TEST(ShareableTest, DissimilarModeExcludesSimilar) {
  AbsGraph g = B1LikeGraph();
  for (const SharePair& pair : FindShareablePairs(g, ShapeSimilarity::kDissimilar)) {
    EXPECT_FALSE(ShapesSimilar(g.node(pair.host).input_shape, g.node(pair.guest).input_shape));
  }
}

TEST(ShareableTest, InvalidPairsRejected) {
  AbsGraph g = B1LikeGraph();
  EXPECT_FALSE(PairValid(g, {0, 1}, ShapeSimilarity::kAny));    // root as host
  EXPECT_FALSE(PairValid(g, {1, 0}, ShapeSimilarity::kAny));    // root as guest
  EXPECT_FALSE(PairValid(g, {2, 2}, ShapeSimilarity::kAny));    // self
  EXPECT_FALSE(PairValid(g, {99999, 1}, ShapeSimilarity::kAny));
  // Guest that is an ancestor of the host's parent (cycle).
  const int head0 = g.HeadOfTask(0);
  const int mid = g.node(head0).parent;
  EXPECT_FALSE(PairValid(g, {head0, mid}, ShapeSimilarity::kAny));
}

TEST(MutationTest, StemPairIsNoOpAndRejected) {
  AbsGraph g = B1LikeGraph();
  // Both stems already read the root input; "guest reuses host's input" would
  // change nothing, so the pair must be rejected as a no-op.
  const int stem0 = g.node(g.root()).children[0];
  const int stem1 = g.node(g.root()).children[1];
  EXPECT_FALSE(PairValid(g, {stem0, stem1}, ShapeSimilarity::kAny));
}

TEST(MutationTest, CrossBranchSharesPrefix) {
  AbsGraph g = B1LikeGraph();
  // Pair the second blocks of two tasks: the guest's old stem dies and the
  // host's stem becomes shared (paper Fig. 5, panel 2).
  const int second0 = g.node(g.node(g.root()).children[0]).children[0];
  const int second1 = g.node(g.node(g.root()).children[1]).children[0];
  const int64_t cap_before = g.TotalCapacity();
  const int size_before = g.size();
  ASSERT_EQ(ClassifyMutation(g, {second0, second1}), MutationKind::kCrossBranch);
  ASSERT_TRUE(ApplyMutation(g, {second0, second1}));
  EXPECT_LT(g.TotalCapacity(), cap_before);  // guest stem removed
  EXPECT_LT(g.size(), size_before);
  g.Validate();
  // The host stem now serves two tasks.
  const int host_stem = g.node(g.root()).children[0];
  EXPECT_GE(g.TasksServed(host_stem).size(), 2u);
}

TEST(MutationTest, InBranchRemovesMiddleNodes) {
  AbsGraph g = B1LikeGraph();
  // Find an in-branch pair: host ancestor of guest with similar shapes.
  const auto pairs = FindShareablePairs(g, ShapeSimilarity::kSimilar);
  const SharePair* in_branch = nullptr;
  for (const SharePair& pair : pairs) {
    if (ClassifyMutation(g, pair) == MutationKind::kInBranch &&
        g.node(pair.host).input_shape == g.node(pair.guest).input_shape) {
      in_branch = &pair;
      break;
    }
  }
  ASSERT_NE(in_branch, nullptr);
  const int size_before = g.size();
  ASSERT_TRUE(ApplyMutation(g, *in_branch));
  EXPECT_LT(g.size(), size_before);  // middle nodes garbage-collected
  g.Validate();
}

TEST(MutationTest, RescaleInsertedForShapeMismatch) {
  AbsGraph g = HeterogeneousGraph();
  const auto pairs = FindShareablePairs(g, ShapeSimilarity::kSimilar);
  const SharePair* mismatched = nullptr;
  for (const SharePair& pair : pairs) {
    if (!(g.node(pair.host).input_shape == g.node(pair.guest).input_shape)) {
      mismatched = &pair;
      break;
    }
  }
  ASSERT_NE(mismatched, nullptr);
  const Shape guest_in = g.node(mismatched->guest).input_shape;
  ASSERT_TRUE(ApplyMutation(g, *mismatched));
  // A rescale node now exists producing the guest's input shape.
  bool found_rescale = false;
  for (const AbsNode& n : g.nodes()) {
    if (n.spec.type == BlockType::kRescale && n.output_shape == guest_in) {
      found_rescale = true;
    }
  }
  EXPECT_TRUE(found_rescale);
}

TEST(MutationTest, InvalidPairReturnsFalseAndLeavesGraphIntact) {
  AbsGraph g = B1LikeGraph();
  const std::string fp = g.Fingerprint();
  EXPECT_FALSE(ApplyMutation(g, {0, 0}));
  EXPECT_EQ(g.Fingerprint(), fp);
}

TEST(MutationTest, MutatePassAppliesSequence) {
  AbsGraph g = B1LikeGraph();
  const auto pairs = FindShareablePairs(g, ShapeSimilarity::kSimilar);
  ASSERT_GE(pairs.size(), 1u);
  std::optional<AbsGraph> mutated = MutatePass(g, {pairs[0]});
  ASSERT_TRUE(mutated.has_value());
  mutated->Validate();
  EXPECT_NE(mutated->Fingerprint(), g.Fingerprint());
  // Base untouched.
  g.Validate();
}

TEST(MutationTest, MutatePassAllInvalidReturnsNullopt) {
  AbsGraph g = B1LikeGraph();
  EXPECT_FALSE(MutatePass(g, {{0, 0}, {1, 1}}).has_value());
}

// Property sweep: long random mutation chains on different topologies keep
// every invariant.
class MutationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationPropertyTest, RandomMutationChainsPreserveInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  AbsGraph g = GetParam() % 2 == 0 ? B1LikeGraph() : HeterogeneousGraph();
  const int num_tasks = g.num_tasks();
  for (int step = 0; step < 12; ++step) {
    const auto pairs = FindShareablePairs(g, ShapeSimilarity::kSimilar);
    if (pairs.empty()) {
      break;
    }
    const SharePair pick = pairs[static_cast<size_t>(rng.NextInt(static_cast<int>(pairs.size())))];
    ASSERT_TRUE(ApplyMutation(g, pick));
    // Invariants: valid tree, one head per task, non-rescale capacity never
    // grows (rescale adapters are the only additions).
    g.Validate();
    EXPECT_EQ(g.num_tasks(), num_tasks);
    for (int t = 0; t < num_tasks; ++t) {
      EXPECT_GE(g.HeadOfTask(t), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationPropertyTest, ::testing::Range(0, 10));

TEST(MutationTest, SampleMutatePassProducesValidGraph) {
  Rng rng(77);
  AbsGraph g = B1LikeGraph();
  std::optional<AbsGraph> mutated = SampleMutatePass(g, 3, ShapeSimilarity::kSimilar, rng);
  ASSERT_TRUE(mutated.has_value());
  mutated->Validate();
}

TEST(MutationTest, HeadOutputsNeverChange) {
  Rng rng(31);
  AbsGraph g = B1LikeGraph();
  std::vector<Shape> head_shapes;
  for (int t = 0; t < g.num_tasks(); ++t) {
    head_shapes.push_back(g.node(g.HeadOfTask(t)).output_shape);
  }
  for (int step = 0; step < 8; ++step) {
    std::optional<AbsGraph> mutated = SampleMutatePass(g, 1, ShapeSimilarity::kSimilar, rng);
    if (!mutated) {
      break;
    }
    g = *mutated;
    for (int t = 0; t < g.num_tasks(); ++t) {
      EXPECT_EQ(g.node(g.HeadOfTask(t)).output_shape, head_shapes[static_cast<size_t>(t)]);
    }
  }
}

}  // namespace
}  // namespace gmorph
