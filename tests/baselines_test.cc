#include "src/baselines/mtl_baselines.h"

#include <gtest/gtest.h>

#include "src/data/benchmarks.h"
#include "src/data/teacher.h"

namespace gmorph {
namespace {

BenchmarkScale TinyScale() {
  BenchmarkScale s;
  s.train_size = 48;
  s.test_size = 32;
  s.cnn_width = 4;
  return s;
}

std::vector<std::unique_ptr<TaskModel>> UntrainedTeachers(const BenchmarkDef& def, Rng& rng) {
  std::vector<std::unique_ptr<TaskModel>> teachers;
  for (const BenchmarkTask& task : def.tasks) {
    teachers.push_back(std::make_unique<TaskModel>(task.model, rng));
  }
  return teachers;
}

std::vector<const TaskModel*> AsConstPtrs(
    const std::vector<std::unique_ptr<TaskModel>>& teachers) {
  std::vector<const TaskModel*> out;
  for (const auto& t : teachers) {
    out.push_back(t.get());
  }
  return out;
}

// Expected common-prefix sharing opportunities per benchmark, mirroring the
// paper's §6.3 discussion: identical VGGs share everything (B1/B2), B3 shares
// only the first conv, B4 shares the stem plus the first two residual blocks,
// B5-B7 share nothing.
TEST(CommonPrefixTest, MatchesPaperStructure) {
  Rng rng(1);
  const std::vector<std::pair<int, int>> expectations = {
      {3, 1}, {4, 3}, {5, 0}, {6, 0}, {7, 0}};
  for (const auto& [bench, expected] : expectations) {
    BenchmarkDef def = MakeBenchmark(bench, TinyScale(), 7);
    auto teachers = UntrainedTeachers(def, rng);
    EXPECT_EQ(CommonPrefixLength(AsConstPtrs(teachers)), expected) << def.id;
  }
  // B1: identical VGG-13s except the heads -> all blocks but the head shared.
  BenchmarkDef b1 = MakeBenchmark(1, TinyScale(), 7);
  auto teachers = UntrainedTeachers(b1, rng);
  EXPECT_EQ(CommonPrefixLength(AsConstPtrs(teachers)),
            static_cast<int>(b1.tasks[0].model.blocks.size()) - 1);
}

TEST(SharedPrefixGraphTest, StructureAndCapacity) {
  Rng rng(2);
  BenchmarkDef def = MakeBenchmark(1, TinyScale(), 9);
  auto teachers = UntrainedTeachers(def, rng);
  auto ptrs = AsConstPtrs(teachers);
  const int full = CommonPrefixLength(ptrs);

  AbsGraph none = BuildSharedPrefixGraph(ptrs, 0);
  AbsGraph half = BuildSharedPrefixGraph(ptrs, full / 2);
  AbsGraph all = BuildSharedPrefixGraph(ptrs, full);
  none.Validate();
  half.Validate();
  all.Validate();
  EXPECT_GT(none.TotalCapacity(), half.TotalCapacity());
  EXPECT_GT(half.TotalCapacity(), all.TotalCapacity());
  EXPECT_GT(none.TotalFlops(), all.TotalFlops());
  // Shared trunk serves all tasks.
  const int trunk_first = all.node(all.root()).children[0];
  EXPECT_EQ(all.TasksServed(trunk_first).size(), def.tasks.size());
}

TEST(AllSharedTest, InfeasibleWhenNoCommonLayers) {
  Rng rng(3);
  BenchmarkDef def = MakeBenchmark(5, TinyScale(), 11);
  std::vector<std::unique_ptr<TaskModel>> teachers = UntrainedTeachers(def, rng);
  std::vector<TaskModel*> ptrs;
  for (auto& t : teachers) {
    ptrs.push_back(t.get());
  }
  MtlBaselineOptions opts;
  MtlBaselineResult result = RunAllShared(ptrs, def.train, def.test, opts);
  EXPECT_FALSE(result.feasible);
}

TEST(AllSharedTest, SharesFullPrefixAndSpeedsUp) {
  Rng rng(4);
  BenchmarkDef def = MakeBenchmark(1, TinyScale(), 13);
  std::vector<std::unique_ptr<TaskModel>> teachers = UntrainedTeachers(def, rng);
  std::vector<TaskModel*> ptrs;
  for (auto& t : teachers) {
    ptrs.push_back(t.get());
    TeacherTrainOptions topts;
    topts.epochs = 1;
    TrainTeacher(*ptrs.back(), def.train, def.test, ptrs.size() - 1, topts);
  }
  MtlBaselineOptions opts;
  opts.finetune.max_epochs = 2;
  opts.finetune.eval_interval = 2;
  opts.latency.measured_runs = 3;
  MtlBaselineResult result = RunAllShared(ptrs, def.train, def.test, opts);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.shared_blocks,
            static_cast<int>(def.tasks[0].model.blocks.size()) - 1);
  EXPECT_GT(result.speedup, 1.5);  // three identical VGGs collapse to ~one
  result.graph.Validate();
}

TEST(TreeMtlTest, RecommendsSomeSharing) {
  Rng rng(5);
  BenchmarkDef def = MakeBenchmark(4, TinyScale(), 17);
  std::vector<std::unique_ptr<TaskModel>> teachers = UntrainedTeachers(def, rng);
  std::vector<TaskModel*> ptrs;
  for (auto& t : teachers) {
    ptrs.push_back(t.get());
    TeacherTrainOptions topts;
    topts.epochs = 1;
    TrainTeacher(*ptrs.back(), def.train, def.test, ptrs.size() - 1, topts);
  }
  MtlBaselineOptions opts;
  opts.finetune.max_epochs = 2;
  opts.finetune.eval_interval = 2;
  opts.probe_epochs = 1;
  opts.latency.measured_runs = 3;
  MtlBaselineResult result = RunTreeMtl(ptrs, def.train, def.test, opts);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.shared_blocks, 1);
  EXPECT_LE(result.shared_blocks, 3);  // B4's common prefix is 3 blocks
  // Sharing a prefix strictly reduces compute; assert on the deterministic
  // FLOPs ratio. The wall-clock ratio at this tiny scale sits within timer
  // noise, so only sanity-check it.
  EXPECT_GE(result.flops_speedup, 1.0);
  EXPECT_GE(result.speedup, 0.9);
}

}  // namespace
}  // namespace gmorph
