#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/core/filtering.h"
#include "src/core/history.h"
#include "src/core/model_parser.h"
#include "src/core/sampling_policy.h"
#include "src/models/zoo.h"

namespace gmorph {
namespace {

AbsGraph TinyGraph(int classes) {
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = classes;
  return ParseModelSpecs({MakeVgg11(opts), MakeVgg11(opts)});
}

TEST(AnnealingPolicyTest, ProbabilityBounds) {
  SimulatedAnnealingPolicy policy;
  for (size_t elites : {0u, 1u, 8u, 16u}) {
    const double p = policy.EliteProbability(elites);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_DOUBLE_EQ(policy.EliteProbability(0), 0.0);
}

TEST(AnnealingPolicyTest, ExploitationGrowsWithIterations) {
  AnnealingOptions opts;
  opts.alpha = 0.9;
  opts.initial_temp = 2.0;
  SimulatedAnnealingPolicy policy(opts);
  policy.Observe(0.0);
  const double early = policy.EliteProbability(8);
  for (int i = 0; i < 50; ++i) {
    policy.AdvanceIteration();
  }
  const double late = policy.EliteProbability(8);
  EXPECT_GT(late, early);
}

TEST(AnnealingPolicyTest, MoreElitesMoreExploitation) {
  SimulatedAnnealingPolicy policy;
  for (int i = 0; i < 30; ++i) {
    policy.AdvanceIteration();
  }
  EXPECT_GT(policy.EliteProbability(16), policy.EliteProbability(1));
}

TEST(AnnealingPolicyTest, HighDropReducesExploitation) {
  AnnealingOptions opts;
  opts.alpha = 0.9;
  SimulatedAnnealingPolicy low_drop(opts);
  SimulatedAnnealingPolicy high_drop(opts);
  for (int i = 0; i < 20; ++i) {
    low_drop.AdvanceIteration();
    high_drop.AdvanceIteration();
  }
  low_drop.Observe(0.0);
  high_drop.Observe(0.9);
  EXPECT_GE(low_drop.EliteProbability(8), high_drop.EliteProbability(8));
}

TEST(AnnealingPolicyTest, SamplesElitesEventually) {
  AnnealingOptions opts;
  opts.alpha = 0.5;  // fast decay -> strong exploitation
  SimulatedAnnealingPolicy policy(opts);
  for (int i = 0; i < 60; ++i) {
    policy.AdvanceIteration();
  }
  HistoryDatabase history;
  AbsGraph original = TinyGraph(2);
  AbsGraph elite = TinyGraph(3);
  history.AddElite(elite, 1.0, 0.0);
  Rng rng(5);
  int elite_hits = 0;
  for (int i = 0; i < 100; ++i) {
    const AbsGraph& base = policy.SampleBase(original, history, rng);
    elite_hits += (base.Fingerprint() == elite.Fingerprint());
  }
  EXPECT_GT(elite_hits, 0);
}

TEST(RandomPolicyTest, AlwaysReturnsOriginal) {
  RandomPolicy policy;
  HistoryDatabase history;
  AbsGraph original = TinyGraph(2);
  history.AddElite(TinyGraph(3), 1.0, 0.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(&policy.SampleBase(original, history, rng), &original);
  }
}

TEST(HistoryTest, EvaluatedDeduplication) {
  HistoryDatabase history;
  AbsGraph g = TinyGraph(2);
  EXPECT_FALSE(history.AlreadyEvaluated(g));
  history.MarkEvaluated(g);
  EXPECT_TRUE(history.AlreadyEvaluated(g));
  EXPECT_EQ(history.num_evaluated(), 1u);
}

TEST(HistoryTest, ElitesSortedAndBounded) {
  HistoryDatabase history(/*max_elites=*/3);
  for (double cost : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    history.AddElite(TinyGraph(2), cost, 0.0);
  }
  ASSERT_EQ(history.elites().size(), 3u);
  EXPECT_DOUBLE_EQ(history.elites()[0].cost, 1.0);
  EXPECT_DOUBLE_EQ(history.elites()[1].cost, 2.0);
  EXPECT_DOUBLE_EQ(history.elites()[2].cost, 3.0);
}

TEST(HistoryTest, EliteEvictionAtCapacityIsStableOnTies) {
  // Equal-cost elites keep insertion order (stable sort), so the entry that
  // falls off at capacity is always the most recently inserted tie — the
  // ordering a checkpoint resume must reproduce bit-for-bit.
  HistoryDatabase history(/*max_elites=*/2);
  history.AddElite(TinyGraph(2), 1.0, 0.01);  // first tie at cost 1.0
  history.AddElite(TinyGraph(3), 1.0, 0.02);  // second tie
  history.AddElite(TinyGraph(4), 1.0, 0.03);  // third tie: must be evicted
  ASSERT_EQ(history.elites().size(), 2u);
  EXPECT_DOUBLE_EQ(history.elites()[0].accuracy_drop, 0.01);
  EXPECT_DOUBLE_EQ(history.elites()[1].accuracy_drop, 0.02);

  // A strictly better candidate still evicts the worst regardless of age.
  history.AddElite(TinyGraph(5), 0.5, 0.04);
  ASSERT_EQ(history.elites().size(), 2u);
  EXPECT_DOUBLE_EQ(history.elites()[0].cost, 0.5);
  EXPECT_DOUBLE_EQ(history.elites()[1].accuracy_drop, 0.01);
}

TEST(HistoryTest, CheckpointAccessorsExposeContents) {
  HistoryDatabase history;
  AbsGraph g = TinyGraph(2);
  history.MarkEvaluated(g);
  history.MarkEvaluatedFingerprint("synthetic-fingerprint");
  EXPECT_EQ(history.fingerprints().size(), 2u);
  EXPECT_TRUE(history.fingerprints().count(g.Fingerprint()) > 0);
  EXPECT_TRUE(history.AlreadyEvaluated(g));

  CapacitySignature sig;
  sig.total = 10;
  history.AddNonPromising(sig);
  ASSERT_EQ(history.non_promising().size(), 1u);
  EXPECT_EQ(history.non_promising()[0].total, 10);
}

TEST(HistoryTest, RuleFilterMatchesMoreAggressive) {
  HistoryDatabase history;
  CapacitySignature bad;
  bad.total = 100;
  bad.per_task_total = {50, 70};
  bad.per_task_specific = {30, 50};
  bad.shared_total = 20;
  history.AddNonPromising(bad);

  CapacitySignature aggressive = bad;
  aggressive.total = 90;
  aggressive.per_task_specific = {20, 50};
  aggressive.shared_total = 30;
  EXPECT_TRUE(history.FilteredByRule(aggressive));

  CapacitySignature conservative = bad;
  conservative.total = 120;
  EXPECT_FALSE(history.FilteredByRule(conservative));
}

TEST(HistoryTest, RuleFilterIsNonStrictOnEqualSignatures) {
  // MoreAggressiveThan is non-strict: a candidate with a capacity profile
  // *equal* to a known non-promising one is filtered too — the same capacity
  // distribution that already failed the accuracy target cannot succeed by
  // restructuring alone.
  HistoryDatabase history;
  CapacitySignature bad;
  bad.total = 100;
  bad.per_task_total = {50, 70};
  bad.per_task_specific = {30, 50};
  bad.shared_total = 20;
  history.AddNonPromising(bad);
  EXPECT_TRUE(history.FilteredByRule(bad));

  // A signature with a different task count never matches.
  CapacitySignature other_arity = bad;
  other_arity.per_task_total = {50};
  other_arity.per_task_specific = {30};
  EXPECT_FALSE(history.FilteredByRule(other_arity));
}

TEST(ConvergenceRateTest, GeometricSequenceRateOne) {
  // f_k = 1 - 0.5^k: increments shrink by a constant factor -> alpha = 1.
  EXPECT_NEAR(EstimateConvergenceRate(0.0, 0.5, 0.75, 0.875), 1.0, 1e-9);
}

TEST(ConvergenceRateTest, DegenerateReturnsOne) {
  EXPECT_DOUBLE_EQ(EstimateConvergenceRate(0.5, 0.5, 0.5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(EstimateConvergenceRate(0.1, 0.2, 0.2, 0.3), 1.0);
}

TEST(ExtrapolateTest, ConvergesToGeometricLimit) {
  // 1 - 0.5^k measured at k = 1..4; limit is 1.0.
  std::vector<double> curve = {0.5, 0.75, 0.875, 0.9375};
  const double predicted = ExtrapolateFinal(curve, 50);
  EXPECT_NEAR(predicted, 1.0, 1e-3);
}

TEST(ExtrapolateTest, FewMeasurementsReturnLast) {
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({0.4}, 10), 0.4);
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({}, 10), 0.0);
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({0.1, 0.2, 0.3}, 0), 0.3);
}

TEST(ExtrapolateTest, StalledCurveStaysPut) {
  std::vector<double> curve = {-0.5, -0.5, -0.5, -0.5};
  EXPECT_NEAR(ExtrapolateFinal(curve, 100), -0.5, 1e-9);
}

TEST(ConvergenceRateTest, NonFiniteInputsClampToNeutralRate) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // A diverged fine-tuning run (NaN/inf scores) must yield the neutral rate,
  // never propagate NaN into the termination decision.
  EXPECT_DOUBLE_EQ(EstimateConvergenceRate(nan, 0.5, 0.75, 0.875), 1.0);
  EXPECT_DOUBLE_EQ(EstimateConvergenceRate(0.0, nan, 0.75, 0.875), 1.0);
  EXPECT_DOUBLE_EQ(EstimateConvergenceRate(0.0, 0.5, inf, 0.875), 1.0);
  EXPECT_DOUBLE_EQ(EstimateConvergenceRate(0.0, 0.5, 0.75, -inf), 1.0);
  EXPECT_DOUBLE_EQ(EstimateConvergenceRate(inf, inf, inf, inf), 1.0);
}

TEST(ConvergenceRateTest, OscillatingSequenceStaysFinite) {
  // Alternating improvements/regressions: whatever rate comes out must be a
  // finite number the caller can safely compare against thresholds.
  const double rate = EstimateConvergenceRate(0.5, 0.8, 0.4, 0.9);
  EXPECT_TRUE(std::isfinite(rate));
}

TEST(ExtrapolateTest, NonFiniteTailReturnsLastFiniteMeasurement) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({0.4, 0.6, nan}, 10), 0.6);
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({0.4, inf, inf}, 10), 0.4);
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({nan, nan}, 10), 0.0);
}

TEST(ExtrapolateTest, NonFinitePenultimateFallsBackToLast) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // The last value is fine but the increment cannot be formed: return it.
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({0.2, nan, 0.7}, 10), 0.7);
}

TEST(ExtrapolateTest, OscillatingCurveStaysFinite) {
  std::vector<double> curve = {0.5, 0.9, 0.3, 0.8, 0.2};
  const double predicted = ExtrapolateFinal(curve, 50);
  EXPECT_TRUE(std::isfinite(predicted));
  // With remaining_steps = 0 the oscillation is irrelevant: exact last value.
  EXPECT_DOUBLE_EQ(ExtrapolateFinal(curve, 0), 0.2);
}

}  // namespace
}  // namespace gmorph
