#include <gtest/gtest.h>

#include "src/core/filtering.h"
#include "src/core/history.h"
#include "src/core/model_parser.h"
#include "src/core/sampling_policy.h"
#include "src/models/zoo.h"

namespace gmorph {
namespace {

AbsGraph TinyGraph(int classes) {
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = classes;
  return ParseModelSpecs({MakeVgg11(opts), MakeVgg11(opts)});
}

TEST(AnnealingPolicyTest, ProbabilityBounds) {
  SimulatedAnnealingPolicy policy;
  for (size_t elites : {0u, 1u, 8u, 16u}) {
    const double p = policy.EliteProbability(elites);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_DOUBLE_EQ(policy.EliteProbability(0), 0.0);
}

TEST(AnnealingPolicyTest, ExploitationGrowsWithIterations) {
  AnnealingOptions opts;
  opts.alpha = 0.9;
  opts.initial_temp = 2.0;
  SimulatedAnnealingPolicy policy(opts);
  policy.Observe(0.0);
  const double early = policy.EliteProbability(8);
  for (int i = 0; i < 50; ++i) {
    policy.AdvanceIteration();
  }
  const double late = policy.EliteProbability(8);
  EXPECT_GT(late, early);
}

TEST(AnnealingPolicyTest, MoreElitesMoreExploitation) {
  SimulatedAnnealingPolicy policy;
  for (int i = 0; i < 30; ++i) {
    policy.AdvanceIteration();
  }
  EXPECT_GT(policy.EliteProbability(16), policy.EliteProbability(1));
}

TEST(AnnealingPolicyTest, HighDropReducesExploitation) {
  AnnealingOptions opts;
  opts.alpha = 0.9;
  SimulatedAnnealingPolicy low_drop(opts);
  SimulatedAnnealingPolicy high_drop(opts);
  for (int i = 0; i < 20; ++i) {
    low_drop.AdvanceIteration();
    high_drop.AdvanceIteration();
  }
  low_drop.Observe(0.0);
  high_drop.Observe(0.9);
  EXPECT_GE(low_drop.EliteProbability(8), high_drop.EliteProbability(8));
}

TEST(AnnealingPolicyTest, SamplesElitesEventually) {
  AnnealingOptions opts;
  opts.alpha = 0.5;  // fast decay -> strong exploitation
  SimulatedAnnealingPolicy policy(opts);
  for (int i = 0; i < 60; ++i) {
    policy.AdvanceIteration();
  }
  HistoryDatabase history;
  AbsGraph original = TinyGraph(2);
  AbsGraph elite = TinyGraph(3);
  history.AddElite(elite, 1.0, 0.0);
  Rng rng(5);
  int elite_hits = 0;
  for (int i = 0; i < 100; ++i) {
    const AbsGraph& base = policy.SampleBase(original, history, rng);
    elite_hits += (base.Fingerprint() == elite.Fingerprint());
  }
  EXPECT_GT(elite_hits, 0);
}

TEST(RandomPolicyTest, AlwaysReturnsOriginal) {
  RandomPolicy policy;
  HistoryDatabase history;
  AbsGraph original = TinyGraph(2);
  history.AddElite(TinyGraph(3), 1.0, 0.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(&policy.SampleBase(original, history, rng), &original);
  }
}

TEST(HistoryTest, EvaluatedDeduplication) {
  HistoryDatabase history;
  AbsGraph g = TinyGraph(2);
  EXPECT_FALSE(history.AlreadyEvaluated(g));
  history.MarkEvaluated(g);
  EXPECT_TRUE(history.AlreadyEvaluated(g));
  EXPECT_EQ(history.num_evaluated(), 1u);
}

TEST(HistoryTest, ElitesSortedAndBounded) {
  HistoryDatabase history(/*max_elites=*/3);
  for (double lat : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    history.AddElite(TinyGraph(2), lat, 0.0);
  }
  ASSERT_EQ(history.elites().size(), 3u);
  EXPECT_DOUBLE_EQ(history.elites()[0].latency_ms, 1.0);
  EXPECT_DOUBLE_EQ(history.elites()[1].latency_ms, 2.0);
  EXPECT_DOUBLE_EQ(history.elites()[2].latency_ms, 3.0);
}

TEST(HistoryTest, RuleFilterMatchesMoreAggressive) {
  HistoryDatabase history;
  CapacitySignature bad;
  bad.total = 100;
  bad.per_task_total = {50, 70};
  bad.per_task_specific = {30, 50};
  bad.shared_total = 20;
  history.AddNonPromising(bad);

  CapacitySignature aggressive = bad;
  aggressive.total = 90;
  aggressive.per_task_specific = {20, 50};
  aggressive.shared_total = 30;
  EXPECT_TRUE(history.FilteredByRule(aggressive));

  CapacitySignature conservative = bad;
  conservative.total = 120;
  EXPECT_FALSE(history.FilteredByRule(conservative));
}

TEST(ConvergenceRateTest, GeometricSequenceRateOne) {
  // f_k = 1 - 0.5^k: increments shrink by a constant factor -> alpha = 1.
  EXPECT_NEAR(EstimateConvergenceRate(0.0, 0.5, 0.75, 0.875), 1.0, 1e-9);
}

TEST(ConvergenceRateTest, DegenerateReturnsOne) {
  EXPECT_DOUBLE_EQ(EstimateConvergenceRate(0.5, 0.5, 0.5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(EstimateConvergenceRate(0.1, 0.2, 0.2, 0.3), 1.0);
}

TEST(ExtrapolateTest, ConvergesToGeometricLimit) {
  // 1 - 0.5^k measured at k = 1..4; limit is 1.0.
  std::vector<double> curve = {0.5, 0.75, 0.875, 0.9375};
  const double predicted = ExtrapolateFinal(curve, 50);
  EXPECT_NEAR(predicted, 1.0, 1e-3);
}

TEST(ExtrapolateTest, FewMeasurementsReturnLast) {
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({0.4}, 10), 0.4);
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({}, 10), 0.0);
  EXPECT_DOUBLE_EQ(ExtrapolateFinal({0.1, 0.2, 0.3}, 0), 0.3);
}

TEST(ExtrapolateTest, StalledCurveStaysPut) {
  std::vector<double> curve = {-0.5, -0.5, -0.5, -0.5};
  EXPECT_NEAR(ExtrapolateFinal(curve, 100), -0.5, 1e-9);
}

}  // namespace
}  // namespace gmorph
