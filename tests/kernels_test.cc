// Tests for the solver registry, the tuning DB, and the autotuner
// (src/kernels): randomized cross-checks of every GEMM solver against an
// independent oracle, bitwise pool-solver parity, tuning-DB round-trips and
// corrupt-file handling (loader tolerance vs strict linter rule ids), the
// warm-run-zero-benchmarks guarantee, frozen-DB determinism, and concurrent
// DB access (the TSan target for src/kernels, via the *Parallel* filter).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/tunedb_verifier.h"
#include "src/common/rng.h"
#include "src/kernels/autotune.h"
#include "src/kernels/registry.h"
#include "src/kernels/solver.h"
#include "src/kernels/tune_db.h"
#include "src/obs/metrics.h"
#include "src/tensor/tensor_ops.h"

#ifndef GMORPH_TESTDATA_DIR
#define GMORPH_TESTDATA_DIR "tests/testdata"
#endif

namespace gmorph {
namespace {

using kernels::GemmCall;
using kernels::GemmSolver;
using kernels::MakeGemmCall;
using kernels::OpFamily;
using kernels::PoolCall;
using kernels::PooledDim;
using kernels::PoolSolver;
using kernels::ProblemDesc;
using kernels::ProblemKey;
using kernels::SolverRegistry;
using kernels::TuneDb;

void FillRandom(std::vector<float>& v, Rng& rng) {
  for (float& x : v) {
    x = rng.NextFloat() * 2.0f - 1.0f;
  }
}

// Independent oracle straight off the MatView contract: C[i,j] (+)= sum_p
// A(i,p) * B(p,j) in double precision. Deliberately not one of the solvers,
// so it cross-checks gemm.ref and the canonical views themselves.
std::vector<float> OracleGemm(const ProblemDesc& desc, const GemmCall& call,
                              const std::vector<float>& c_init) {
  std::vector<float> out(static_cast<size_t>(desc.m * desc.n));
  for (int64_t i = 0; i < desc.m; ++i) {
    for (int64_t j = 0; j < desc.n; ++j) {
      double acc = call.accumulate ? c_init[static_cast<size_t>(i * desc.n + j)] : 0.0;
      for (int64_t p = 0; p < desc.k; ++p) {
        acc += static_cast<double>(*call.a.at(i, p)) * static_cast<double>(*call.b.at(p, j));
      }
      out[static_cast<size_t>(i * desc.n + j)] = static_cast<float>(acc);
    }
  }
  return out;
}

struct GemmCase {
  int64_t m, k, n;
};

// Edge shapes the dispatch thresholds and tile loops must survive: single
// rows/columns, K=1 (no accumulation loop), tall-skinny and short-wide tiles
// straddling the 32-column strip and the packing panels.
const GemmCase kEdgeCases[] = {
    {1, 1, 1},  {1, 7, 1},   {5, 1, 9},    {1, 32, 64},  {33, 1, 17},
    {3, 96, 2}, {257, 19, 3}, {2, 5, 301}, {64, 48, 64}, {31, 33, 35},
};

TEST(GemmSolverPropertyTest, AllSolversMatchOracleOnEdgeAndRandomShapes) {
  Rng rng(1234);
  const SolverRegistry& registry = SolverRegistry::Global();
  std::vector<GemmCase> cases(std::begin(kEdgeCases), std::end(kEdgeCases));
  for (int i = 0; i < 6; ++i) {
    cases.push_back({1 + static_cast<int64_t>(rng.NextU64() % 70),
                     1 + static_cast<int64_t>(rng.NextU64() % 70),
                     1 + static_cast<int64_t>(rng.NextU64() % 70)});
  }
  for (const GemmCase& c : cases) {
    for (OpFamily op : {OpFamily::kGemmNN, OpFamily::kGemmNT, OpFamily::kGemmTN}) {
      const ProblemDesc desc = kernels::GemmProblem(op, c.m, c.k, c.n);
      std::vector<float> a(static_cast<size_t>(c.m * c.k));
      std::vector<float> b(static_cast<size_t>(c.k * c.n));
      std::vector<float> c_init(static_cast<size_t>(c.m * c.n));
      FillRandom(a, rng);
      FillRandom(b, rng);
      FillRandom(c_init, rng);
      for (bool accumulate : {false, true}) {
        // Tolerance scales with the dot-product length; solvers reorder the
        // reduction, they do not approximate it.
        const float tol = 1e-5f * static_cast<float>(c.k) + 1e-5f;
        const GemmCall probe = MakeGemmCall(desc, a.data(), b.data(), nullptr, accumulate);
        const std::vector<float> want = OracleGemm(desc, probe, c_init);
        for (const GemmSolver* solver : registry.gemm_solvers()) {
          if (!solver->IsApplicable(desc)) {
            continue;
          }
          std::vector<float> got = c_init;
          solver->Run(desc, MakeGemmCall(desc, a.data(), b.data(), got.data(), accumulate));
          for (size_t idx = 0; idx < want.size(); ++idx) {
            ASSERT_NEAR(got[idx], want[idx], tol)
                << solver->name() << " " << ProblemKey(desc) << " accumulate=" << accumulate
                << " element " << idx;
          }
        }
      }
    }
  }
}

TEST(GemmSolverPropertyTest, HeuristicAndResolveAlwaysApplicable) {
  Rng rng(99);
  const SolverRegistry& registry = SolverRegistry::Global();
  for (int i = 0; i < 50; ++i) {
    const ProblemDesc desc = kernels::GemmProblem(
        static_cast<OpFamily>(rng.NextU64() % 3), 1 + rng.NextU64() % 300,
        1 + rng.NextU64() % 300, 1 + rng.NextU64() % 300);
    const GemmSolver* h = registry.HeuristicGemm(desc);
    ASSERT_NE(h, nullptr);
    EXPECT_TRUE(h->IsApplicable(desc)) << h->name() << " " << ProblemKey(desc);
    const GemmSolver* r = registry.ResolveGemm(desc);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->IsApplicable(desc)) << r->name() << " " << ProblemKey(desc);
    EXPECT_FALSE(registry.Applicable(desc).empty());
  }
}

TEST(PoolSolverTest, AllSolversBitwiseMatchGeneric) {
  Rng rng(555);
  const SolverRegistry& registry = SolverRegistry::Global();
  const PoolSolver* generic = registry.FindPool("pool.generic");
  ASSERT_NE(generic, nullptr);
  struct PoolCase {
    int64_t planes, h, w, kernel, stride;
  };
  const PoolCase cases[] = {
      {1, 2, 2, 2, 2}, {3, 8, 8, 2, 2},  {4, 7, 9, 2, 2},
      {2, 6, 6, 3, 3}, {5, 16, 16, 3, 2}, {8, 5, 5, 2, 1},
  };
  for (const PoolCase& c : cases) {
    const ProblemDesc desc = kernels::PoolProblem(c.planes, c.h, c.w, c.kernel, c.stride);
    const int64_t oh = PooledDim(c.h, c.kernel, c.stride);
    const int64_t ow = PooledDim(c.w, c.kernel, c.stride);
    ASSERT_GE(oh, 1);
    ASSERT_GE(ow, 1);
    std::vector<float> x(static_cast<size_t>(c.planes * c.h * c.w));
    FillRandom(x, rng);
    std::vector<float> want(static_cast<size_t>(c.planes * oh * ow));
    generic->Run(desc, PoolCall{x.data(), want.data()});
    for (const PoolSolver* solver : registry.pool_solvers()) {
      if (!solver->IsApplicable(desc)) {
        continue;
      }
      std::vector<float> got(want.size(), -1.0f);
      solver->Run(desc, PoolCall{x.data(), got.data()});
      EXPECT_EQ(got, want) << solver->name() << " " << ProblemKey(desc);
    }
  }
}

TEST(SolverRegistryTest, NamesResolveAndUnknownsDoNot) {
  const SolverRegistry& registry = SolverRegistry::Global();
  for (const GemmSolver* s : registry.gemm_solvers()) {
    EXPECT_EQ(registry.FindGemm(s->name()), s);
  }
  for (const PoolSolver* s : registry.pool_solvers()) {
    EXPECT_EQ(registry.FindPool(s->name()), s);
  }
  EXPECT_EQ(registry.FindGemm("gemm.bogus"), nullptr);
  EXPECT_EQ(registry.FindPool("gemm.ref"), nullptr);  // wrong family
}

class TuneDbFileTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) { return ::testing::TempDir() + "gmorph_" + name; }

  std::string Write(const std::string& name, const std::string& content) {
    const std::string path = Path(name);
    std::ofstream out(path, std::ios::trunc);
    out << content;
    return path;
  }
};

TEST_F(TuneDbFileTest, RoundTripPreservesEntriesAndResolution) {
  TuneDb db;
  const ProblemDesc gemm = kernels::GemmProblem(OpFamily::kGemmNN, 8, 27, 1024);
  const ProblemDesc pool = kernels::PoolProblem(64, 16, 16, 2, 2);
  TuneDb::Entry ge;
  ge.solver = "gemm.packed";
  ge.gflops = 12.5;
  ge.ms = 0.125;
  db.Record(gemm, ge);
  TuneDb::Entry pe;
  pe.solver = "pool.2x2s2";
  pe.gflops = 3.25;
  pe.ms = 0.5;
  db.Record(pool, pe);

  const std::string path = Path("roundtrip.tunedb");
  ASSERT_TRUE(db.Save(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // atomic: no residue

  TuneDb loaded;
  const TuneDb::LoadStats stats = loaded.Load(path);
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.skipped, 0);
  EXPECT_FALSE(stats.fingerprint_mismatch);
  ASSERT_EQ(loaded.size(), 2);

  const TuneDb::Entry* g = loaded.Lookup(gemm);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->solver, "gemm.packed");
  EXPECT_DOUBLE_EQ(g->gflops, 12.5);
  EXPECT_EQ(g->resolved, SolverRegistry::Global().FindGemm("gemm.packed"));
  const TuneDb::Entry* p = loaded.Lookup(pool);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->resolved, SolverRegistry::Global().FindPool("pool.2x2s2"));
  std::filesystem::remove(path);
}

TEST_F(TuneDbFileTest, EntryLineSurvivesFormatParseCycle) {
  ProblemDesc desc = kernels::GemmProblem(OpFamily::kGemmTN, 17, 32, 96);
  desc.threads = 4;
  TuneDb::Entry entry;
  entry.solver = "gemm.dot";
  entry.gflops = 1.0 / 3.0;  // exercises the %.17g round-trip
  entry.ms = 0.0001;
  const std::string line = kernels::FormatTuneEntryLine(desc, entry);
  ProblemDesc desc2;
  TuneDb::Entry entry2;
  std::string error;
  ASSERT_TRUE(kernels::ParseTuneEntryLine(line, &desc2, &entry2, &error)) << error;
  EXPECT_EQ(desc2, desc);
  EXPECT_EQ(entry2.solver, entry.solver);
  EXPECT_DOUBLE_EQ(entry2.gflops, entry.gflops);
  EXPECT_DOUBLE_EQ(entry2.ms, entry.ms);
}

TEST_F(TuneDbFileTest, LoaderDropsMalformedLinesAndForeignFingerprints) {
  const std::string good =
      "entry op=gemm_nn m=4 k=4 n=4 aux0=0 aux1=0 threads=1 solver=gemm.ref gflops=1 ms=1";
  const std::string path = Write("tolerant.tunedb",
                                 std::string(kernels::kTuneDbHeader) + "\n" +
                                     "fingerprint " + kernels::BuildFingerprint() + "\n" +
                                     good + "\n" +
                                     "entry op=gemm_nn m=4 k=4 solver=gemm.ref\n" +      // missing fields
                                     "entry op=gemm_nn m=2 k=2 n=2 aux0=0 aux1=0 "
                                     "threads=1 solver=gemm.nope gflops=1 ms=1\n");       // unknown solver
  TuneDb db;
  const TuneDb::LoadStats stats = db.Load(path);
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.skipped, 2);
  EXPECT_EQ(db.size(), 1);

  // A DB tuned by a different build parses but contributes nothing.
  const std::string foreign = Write("foreign.tunedb",
                                    std::string(kernels::kTuneDbHeader) + "\n" +
                                        "fingerprint 0123456789abcdef\n" + good + "\n");
  TuneDb db2;
  const TuneDb::LoadStats stats2 = db2.Load(foreign);
  EXPECT_TRUE(stats2.ok);
  EXPECT_TRUE(stats2.fingerprint_mismatch);
  EXPECT_EQ(stats2.entries, 0);
  EXPECT_EQ(db2.size(), 0);
  std::filesystem::remove(path);
  std::filesystem::remove(foreign);
}

// The strict linter must report each seeded defect under its advertised
// tune.* rule id (the loader above only drops them silently).
TEST_F(TuneDbFileTest, VerifierReportsRuleIds) {
  const std::string clean = Write("clean.tunedb",
                                  std::string(kernels::kTuneDbHeader) + "\n" +
                                      "fingerprint " + kernels::BuildFingerprint() + "\n" +
                                      "entry op=gemm_nn m=4 k=4 n=4 aux0=0 aux1=0 threads=1 "
                                      "solver=gemm.ref gflops=1 ms=1\n");
  EXPECT_TRUE(VerifyTuneDbFile(clean).ok());

  EXPECT_TRUE(VerifyTuneDbFile(Path("does_not_exist.tunedb")).HasRule("tune.open"));
  EXPECT_TRUE(VerifyTuneDbFile(Write("noheader.tunedb", "entry nope\n")).HasRule("tune.header"));
  EXPECT_TRUE(
      VerifyTuneDbFile(Write("badver.tunedb", "gmorph-tunedb v99\n")).HasRule("tune.version"));

  // Foreign fingerprint: structurally valid, but a warning (this build
  // ignores the entries), so the list stays ok().
  const DiagnosticList foreign = VerifyTuneDbFile(
      Write("fp.tunedb", std::string(kernels::kTuneDbHeader) + "\nfingerprint 0123456789abcdef\n"));
  EXPECT_TRUE(foreign.HasRule("tune.fingerprint"));
  EXPECT_TRUE(foreign.ok());
  // Malformed fingerprint: an error.
  const DiagnosticList badfp = VerifyTuneDbFile(
      Write("badfp.tunedb", std::string(kernels::kTuneDbHeader) + "\nfingerprint xyz\n"));
  EXPECT_TRUE(badfp.HasRule("tune.fingerprint"));
  EXPECT_FALSE(badfp.ok());

  const std::string corrupt = Write(
      "corrupt.tunedb",
      std::string(kernels::kTuneDbHeader) + "\n" + "fingerprint " + kernels::BuildFingerprint() +
          "\n" +
          "entry op=gemm_nn m=8 k=27 n=1024 aux0=0 aux1=0 threads=4 solver=gemm.direct "
          "gflops=10 ms=0.03\n" +
          "entry op=gemm_nn m=8 k=27 solver=gemm.direct\n" +  // tune.entry
          "entry op=gemm_nn m=2 k=2 n=2 aux0=0 aux1=0 threads=1 solver=gemm.bogus gflops=1 "
          "ms=1\n" +  // tune.solver
          "entry op=maxpool m=4 k=8 n=8 aux0=3 aux1=3 threads=1 solver=pool.2x2s2 gflops=1 "
          "ms=1\n" +  // tune.applicable
          "entry op=gemm_nn m=8 k=27 n=1024 aux0=0 aux1=0 threads=4 solver=gemm.packed gflops=2 "
          "ms=1\n");  // tune.duplicate
  const DiagnosticList diags = VerifyTuneDbFile(corrupt);
  EXPECT_FALSE(diags.ok());
  EXPECT_TRUE(diags.HasRule("tune.entry")) << diags.ToString();
  EXPECT_TRUE(diags.HasRule("tune.solver")) << diags.ToString();
  EXPECT_TRUE(diags.HasRule("tune.applicable")) << diags.ToString();
  EXPECT_TRUE(diags.HasRule("tune.duplicate")) << diags.ToString();
}

// The checked-in fixture behind the cli_verify_corrupt_tunedb ctest entry
// must keep tripping the rules that test greps for.
TEST_F(TuneDbFileTest, CheckedInCorruptFixtureTripsLinter) {
  const std::string path = std::string(GMORPH_TESTDATA_DIR) + "/tunedb_corrupt.txt";
  const DiagnosticList diags = VerifyTuneDbFile(path);
  EXPECT_FALSE(diags.ok());
  EXPECT_TRUE(diags.HasRule("tune.entry")) << diags.ToString();
  EXPECT_TRUE(diags.HasRule("tune.solver")) << diags.ToString();
  EXPECT_TRUE(diags.HasRule("tune.duplicate")) << diags.ToString();
}

TEST(AutotuneTest, WinnerIsBestSampleAndRecorded) {
  TuneDb db;
  const ProblemDesc desc = kernels::GemmProblem(OpFamily::kGemmNN, 16, 24, 48);
  kernels::AutotuneOptions opts;
  opts.warmup = 0;
  opts.repeats = 1;
  const kernels::TuneResult result = kernels::TuneProblem(desc, db, opts);
  EXPECT_FALSE(result.reused);
  ASSERT_FALSE(result.samples.empty());
  EXPECT_EQ(result.samples.size(), SolverRegistry::Global().Applicable(desc).size());
  double best = 0.0;
  for (const kernels::SolverSample& s : result.samples) {
    best = std::max(best, s.gflops);
  }
  EXPECT_DOUBLE_EQ(result.winner_gflops, best);
  const TuneDb::Entry* e = db.Lookup(desc);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->solver, result.winner);
  ASSERT_NE(e->resolved, nullptr);
  EXPECT_TRUE(e->resolved->IsApplicable(desc));
}

// The acceptance guarantee: once the DB has an entry, re-tuning the same
// descriptor benchmarks nothing (kernels.autotune_benchmarks stays flat).
TEST(AutotuneTest, WarmRunPerformsZeroBenchmarks) {
  obs::Counter& benchmarks = obs::GetCounter("kernels.autotune_benchmarks");
  obs::Counter& cached = obs::GetCounter("kernels.autotune_cached");
  TuneDb db;
  const ProblemDesc desc = kernels::GemmProblem(OpFamily::kGemmNT, 8, 36, 256);
  kernels::AutotuneOptions opts;
  opts.warmup = 0;
  opts.repeats = 1;
  kernels::TuneProblem(desc, db, opts);

  const int64_t benchmarks_before = benchmarks.Value();
  const int64_t cached_before = cached.Value();
  const kernels::TuneResult warm = kernels::TuneProblem(desc, db, opts);
  EXPECT_TRUE(warm.reused);
  EXPECT_TRUE(warm.samples.empty());
  EXPECT_EQ(benchmarks.Value(), benchmarks_before);  // zero tuning work
  EXPECT_EQ(cached.Value(), cached_before + 1);

  // force=true is the explicit re-measure escape hatch.
  opts.force = true;
  const kernels::TuneResult forced = kernels::TuneProblem(desc, db, opts);
  EXPECT_FALSE(forced.reused);
  EXPECT_GT(benchmarks.Value(), benchmarks_before);
}

// Pins resolution through a frozen DB: the installed winner (deliberately not
// the heuristic pick) is returned for every resolve, the DB-driven kernel is
// bitwise deterministic across runs, and clearing the DB restores heuristic
// dispatch. Mirrors a warm process planning from a tuned DB on disk.
TEST(AutotuneTest, FrozenDbResolvesIdenticalSolversAndBitwiseOutputs) {
  const SolverRegistry& registry = SolverRegistry::Global();
  const ProblemDesc desc = kernels::GemmProblem(OpFamily::kGemmNN, 24, 32, 40);
  const GemmSolver* heuristic = registry.HeuristicGemm(desc);
  const char* pinned = std::string(heuristic->name()) == "gemm.packed" ? "gemm.dot" : "gemm.packed";

  auto db = std::make_shared<TuneDb>();
  TuneDb::Entry entry;
  entry.solver = pinned;
  db->Record(desc, entry);
  kernels::SetGlobalTuneDb(db);

  EXPECT_EQ(registry.ResolveGemm(desc), registry.FindGemm(pinned));
  EXPECT_EQ(registry.ResolveGemm(desc), registry.ResolveGemm(desc));

  Rng rng(7);
  std::vector<float> a(static_cast<size_t>(desc.m * desc.k));
  std::vector<float> b(static_cast<size_t>(desc.k * desc.n));
  FillRandom(a, rng);
  FillRandom(b, rng);
  std::vector<float> c1(static_cast<size_t>(desc.m * desc.n));
  std::vector<float> c2(c1.size());
  MatmulNN(a.data(), b.data(), c1.data(), desc.m, desc.k, desc.n);
  MatmulNN(a.data(), b.data(), c2.data(), desc.m, desc.k, desc.n);
  EXPECT_EQ(c1, c2);  // frozen DB -> same solver -> bitwise-equal outputs

  kernels::SetGlobalTuneDb(nullptr);
  EXPECT_EQ(registry.ResolveGemm(desc), heuristic);
}

// Concurrent Lookup/Resolve against a DB that another thread is still
// recording into — the shared_mutex contract the serving path relies on.
// Named *Parallel* so the threaded/TSan ctest entries pick it up.
TEST(TuneDbParallelTest, ConcurrentLookupAndRecord) {
  auto db = std::make_shared<TuneDb>();
  kernels::SetGlobalTuneDb(db);
  const SolverRegistry& registry = SolverRegistry::Global();
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kDescs = 64;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, w] {
      for (int i = w; i < kDescs; i += kWriters) {
        TuneDb::Entry entry;
        entry.solver = (i % 2 == 0) ? "gemm.packed" : "gemm.ref";
        entry.gflops = i;
        db->Record(kernels::GemmProblem(OpFamily::kGemmNN, 1 + i, 8, 8), entry);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&db, &registry] {
      for (int pass = 0; pass < 4; ++pass) {
        for (int i = 0; i < kDescs; ++i) {
          const ProblemDesc desc = kernels::GemmProblem(OpFamily::kGemmNN, 1 + i, 8, 8);
          if (const TuneDb::Entry* e = db->Lookup(desc); e != nullptr) {
            EXPECT_FALSE(e->solver.empty());
          }
          EXPECT_NE(registry.ResolveGemm(desc), nullptr);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  kernels::SetGlobalTuneDb(nullptr);
  EXPECT_EQ(db->size(), kDescs);
  for (int i = 0; i < kDescs; ++i) {
    const TuneDb::Entry* e = db->Lookup(kernels::GemmProblem(OpFamily::kGemmNN, 1 + i, 8, 8));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->solver, (i % 2 == 0) ? "gemm.packed" : "gemm.ref");
  }
}

}  // namespace
}  // namespace gmorph
