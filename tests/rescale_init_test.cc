// Properties of the identity-like rescale initialization (the design choice
// documented in src/nn/rescale.cc and DESIGN.md §3b): a freshly inserted
// adapter approximately passes features through instead of destroying them.
#include <gtest/gtest.h>

#include "src/nn/rescale.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

TEST(RescaleInitTest, ChannelExpansionReplicatesChannels) {
  Rng rng(1);
  Rescale rescale(Shape{4, 6, 6}, Shape{8, 6, 6}, rng);
  Tensor x = Tensor::RandomGaussian(Shape{2, 4, 6, 6}, rng);
  Tensor y = rescale.Forward(x, /*training=*/false);
  // Output channel o tracks input channel o % 4 up to the 1% init noise.
  const int64_t spatial = 36;
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t o = 0; o < 8; ++o) {
      const int64_t src = o % 4;
      float max_err = 0.0f;
      for (int64_t s = 0; s < spatial; ++s) {
        max_err = std::max(max_err, std::fabs(y.at((n * 8 + o) * spatial + s) -
                                              x.at((n * 4 + src) * spatial + s)));
      }
      EXPECT_LT(max_err, 0.35f) << "channel " << o;  // noise has fan-in 4
    }
  }
}

TEST(RescaleInitTest, ChannelReductionKeepsLeadingChannels) {
  Rng rng(2);
  Rescale rescale(Shape{8, 4, 4}, Shape{4, 4, 4}, rng);
  Tensor x = Tensor::RandomGaussian(Shape{1, 8, 4, 4}, rng);
  Tensor y = rescale.Forward(x, false);
  const int64_t spatial = 16;
  for (int64_t o = 0; o < 4; ++o) {
    float max_err = 0.0f;
    for (int64_t s = 0; s < spatial; ++s) {
      max_err = std::max(max_err, std::fabs(y.at(o * spatial + s) - x.at(o * spatial + s)));
    }
    EXPECT_LT(max_err, 0.5f) << "channel " << o;  // noise has fan-in 8
  }
}

TEST(RescaleInitTest, TokenDimAdapterNearIdentity) {
  Rng rng(3);
  Rescale rescale(Shape{4, 6}, Shape{4, 6}, rng);  // identity shapes: no adapter
  EXPECT_TRUE(rescale.IsIdentity());

  Rescale expand(Shape{4, 6}, Shape{4, 12}, rng);
  Tensor x = Tensor::RandomGaussian(Shape{1, 4, 6}, rng);
  Tensor y = expand.Forward(x, false);
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t d = 0; d < 12; ++d) {
      // Bias starts at zero; weight is near delta(d % 6).
      EXPECT_NEAR(y.at(t * 12 + d), x.at(t * 6 + d % 6), 0.3f);
    }
  }
}

TEST(RescaleInitTest, PureSpatialRescaleIsParameterFree) {
  Rng rng(4);
  Rescale rescale(Shape{4, 8, 8}, Shape{4, 16, 16}, rng);
  EXPECT_EQ(rescale.ParamCount(), 0);
  // A constant field stays constant through bilinear interpolation.
  Tensor x = Tensor::Full(Shape{1, 4, 8, 8}, 2.0f);
  Tensor y = rescale.Forward(x, false);
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y.at(i), 2.0f, 1e-6f);
  }
}

}  // namespace
}  // namespace gmorph
