# End-to-end quantization smoke: `gmorph_cli --quantize` must calibrate the
# benchmark plan, write a "gmorph-quant v1" recipe that passes
# `gmorph_cli --verify`, apply it to at least one step, and run the quantized
# engine — with every reported per-task accuracy drop inside the 1%-absolute
# budget the acceptance bar sets.
#
# Invoked by ctest as:
#   cmake -DCLI=<gmorph_cli> -DCFG=<cli_trace_smoke.cfg> -DOUT_DIR=<dir>
#         -P run_quant_smoke.cmake

set(RECIPE "${OUT_DIR}/quant_smoke.quantrecipe")
set(SMOKE_CFG "${OUT_DIR}/quant_smoke.cfg")
file(REMOVE "${RECIPE}" "${SMOKE_CFG}")

# The shared tiny-search config, plus the recipe destination (the base config
# does not set quant_* keys, so appending cannot shadow anything).
file(READ "${CFG}" base_cfg)
file(WRITE "${SMOKE_CFG}" "${base_cfg}\nquant_recipe = ${RECIPE}\n")

# Calibrate + quantize + run: one mode covers the whole lifecycle.
execute_process(
  COMMAND "${CLI}" "--quantize" "${SMOKE_CFG}"
  RESULT_VARIABLE quant_rc
  OUTPUT_VARIABLE quant_out
  ERROR_VARIABLE quant_err)
if(NOT quant_rc EQUAL 0)
  message(FATAL_ERROR "--quantize exited ${quant_rc}:\n${quant_out}\n${quant_err}")
endif()
if(NOT EXISTS "${RECIPE}")
  message(FATAL_ERROR "--quantize did not write ${RECIPE}")
endif()
if(NOT quant_out MATCHES "([1-9][0-9]*) step\\(s\\) now int8")
  message(FATAL_ERROR "--quantize applied no int8 step:\n${quant_out}")
endif()
if(NOT quant_out MATCHES "latency \\(batch [0-9]+\\): f32 [0-9.]+ ms -> int8 [0-9.]+ ms")
  message(FATAL_ERROR "--quantize did not run the quantized engine:\n${quant_out}")
endif()

# Every reported per-task drop must sit inside the 1%-absolute budget.
string(REGEX MATCHALL "drop ([+-][0-9.]+)" drops "${quant_out}")
if(drops STREQUAL "")
  message(FATAL_ERROR "--quantize reported no per-task drops:\n${quant_out}")
endif()
foreach(drop_match ${drops})
  string(REGEX REPLACE "drop \\+?" "" drop "${drop_match}")
  if(drop GREATER "0.0100001")
    message(FATAL_ERROR "per-task drop ${drop} exceeds the 1% budget:\n${quant_out}")
  endif()
endforeach()

# The written recipe must pass the strict linter.
execute_process(
  COMMAND "${CLI}" "--verify" "${RECIPE}"
  RESULT_VARIABLE verify_rc
  OUTPUT_VARIABLE verify_out
  ERROR_VARIABLE verify_err)
if(NOT verify_rc EQUAL 0)
  message(FATAL_ERROR "--verify rejected the recipe (${verify_rc}):\n${verify_out}\n${verify_err}")
endif()
