// The unified analysis driver: rule registry invariants, the dtype-propagation
// and peak-memory dataflow analyses, the severity policy
// (--Werror/--Wno/baseline), AnalyzeFile's kind sniffing, and the
// text/JSON/SARIF renderers.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/driver.h"
#include "src/analysis/dtype_analysis.h"
#include "src/analysis/mem_analysis.h"
#include "src/analysis/plan_ir.h"
#include "src/analysis/rules.h"

#ifndef GMORPH_TESTDATA_DIR
#define GMORPH_TESTDATA_DIR "tests/testdata"
#endif

namespace gmorph {
namespace {

std::string Testdata(const char* file) {
  return std::string(GMORPH_TESTDATA_DIR) + "/" + file;
}

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

TEST(RuleRegistryTest, RulesAreSortedAndUnique) {
  const auto rules = AllRules();
  ASSERT_FALSE(rules.empty());
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(std::string(rules[i - 1].id), std::string(rules[i].id))
        << "registry must be sorted and duplicate-free";
  }
}

TEST(RuleRegistryTest, EveryRuleHasADescription) {
  for (const RuleInfo& rule : AllRules()) {
    EXPECT_NE(rule.description[0], '\0') << rule.id;
  }
}

TEST(RuleRegistryTest, FindRuleResolvesExactIdsOnly) {
  ASSERT_NE(FindRule("plan.buffer.overlap"), nullptr);
  EXPECT_EQ(std::string(FindRule("plan.buffer.overlap")->id), "plan.buffer.overlap");
  EXPECT_EQ(FindRule("plan.buffer"), nullptr);
  EXPECT_EQ(FindRule("no.such.rule"), nullptr);
}

TEST(RuleRegistryTest, PatternsMatchExactAndDottedPrefix) {
  EXPECT_TRUE(RuleMatchesPattern("plan.buffer.overlap", "plan.buffer.overlap"));
  EXPECT_TRUE(RuleMatchesPattern("plan.buffer.overlap", "plan"));
  EXPECT_TRUE(RuleMatchesPattern("plan.buffer.overlap", "plan."));
  EXPECT_TRUE(RuleMatchesPattern("plan.buffer.overlap", "plan.*"));
  EXPECT_TRUE(RuleMatchesPattern("plan.buffer.overlap", "plan.buffer"));
  EXPECT_FALSE(RuleMatchesPattern("plan.buffer.overlap", "plan.buf"));
  EXPECT_FALSE(RuleMatchesPattern("planner.x", "plan"));
  EXPECT_TRUE(PatternSelectsAnyRule("tune"));
  EXPECT_FALSE(PatternSelectsAnyRule("bogus"));
}

TEST(RuleRegistryTest, ListRulesTextCoversTheWholeRegistry) {
  const std::string text = ListRulesText();
  for (const RuleInfo& rule : AllRules()) {
    EXPECT_NE(text.find(rule.id), std::string::npos) << rule.id;
  }
  EXPECT_NE(text.find("# " + std::to_string(AllRules().size()) + " rules."),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Plan-building helpers (mirrors verifier_test.cc's minimal chain)
// ---------------------------------------------------------------------------

PlanStep LinearStep(int in, int out, int group = 0) {
  PlanStep s;
  s.kind = PlanOp::kLinear;
  s.in0 = in;
  s.out = out;
  s.group = group;
  s.weight_shape = Shape{4, 4};
  return s;
}

PlanValue Val4(int buffer = -1, bool head = false) {
  PlanValue v;
  v.shape = Shape{4};
  v.buffer = buffer;
  v.is_head = head;
  return v;
}

void IndexGroups(PlanIR& plan) {
  for (int s = 0; s < static_cast<int>(plan.steps.size()); ++s) {
    plan.groups[static_cast<size_t>(plan.steps[static_cast<size_t>(s)].group)].steps.push_back(s);
  }
  for (int g = 1; g < static_cast<int>(plan.groups.size()); ++g) {
    plan.groups[static_cast<size_t>(plan.groups[static_cast<size_t>(g)].parent)]
        .children.push_back(g);
  }
}

PlanIR CleanChainPlan() {
  PlanIR plan;
  plan.values = {Val4(), Val4(0), Val4(1, /*head=*/true)};
  plan.groups.emplace_back();
  plan.buffers = {PlanBuffer{4, true}, PlanBuffer{4, false}};
  plan.steps = {LinearStep(0, 1), LinearStep(1, 2)};
  plan.head_values = {2};
  IndexGroups(plan);
  return plan;
}

// ---------------------------------------------------------------------------
// Dtype-propagation analysis
// ---------------------------------------------------------------------------

TEST(DtypeAnalysisTest, CleanChainHasNoFindings) {
  EXPECT_TRUE(AnalyzePlanDtypes(CleanChainPlan()).empty());
}

TEST(DtypeAnalysisTest, DetectsDeclaredInt8AgainstComputedF32) {
  PlanIR plan = CleanChainPlan();
  plan.values[1].dtype = kernels::DType::kInt8;
  const DiagnosticList diags = AnalyzePlanDtypes(plan);
  EXPECT_TRUE(diags.HasRule("plan.dtype.mismatch")) << diags.ToString();
}

TEST(DtypeAnalysisTest, DetectsInt8PlanInput) {
  PlanIR plan = CleanChainPlan();
  plan.values[0].dtype = kernels::DType::kInt8;
  const DiagnosticList diags = AnalyzePlanDtypes(plan);
  EXPECT_TRUE(diags.HasRule("plan.dtype.mismatch")) << diags.ToString();
}

TEST(DtypeAnalysisTest, DetectsAliasChangingDtype) {
  PlanIR plan = CleanChainPlan();
  PlanValue alias;
  alias.shape = Shape{4};
  alias.alias_of = 1;
  alias.dtype = kernels::DType::kInt8;
  plan.values.push_back(alias);
  const DiagnosticList diags = AnalyzePlanDtypes(plan);
  EXPECT_TRUE(diags.HasRule("plan.dtype.alias")) << diags.ToString();
}

TEST(DtypeAnalysisTest, DetectsInt8OnNonGemmStep) {
  PlanIR plan = CleanChainPlan();
  PlanStep pool;
  pool.kind = PlanOp::kMaxPool;
  pool.in0 = 1;
  pool.out = 2;
  pool.dtype = kernels::DType::kInt8;
  plan.steps[1] = pool;
  const DiagnosticList diags = AnalyzePlanDtypes(plan);
  EXPECT_TRUE(diags.HasRule("plan.dtype.step")) << diags.ToString();
}

TEST(DtypeAnalysisTest, DetectsInt8OperandAtKernelBoundary) {
  // v1 has no producer (fact stays bottom), so its declared int8 storage is
  // what the consuming kernel would read — a boundary violation.
  PlanIR plan = CleanChainPlan();
  plan.steps.erase(plan.steps.begin());
  plan.groups[0].steps = {0};
  plan.steps[0].in0 = 1;
  plan.values[1].dtype = kernels::DType::kInt8;
  const DiagnosticList diags = AnalyzePlanDtypes(plan);
  EXPECT_TRUE(diags.HasRule("plan.dtype.input")) << diags.ToString();
}

TEST(DtypeAnalysisTest, DetectsInt8Head) {
  PlanIR plan = CleanChainPlan();
  plan.values[2].dtype = kernels::DType::kInt8;
  const DiagnosticList diags = AnalyzePlanDtypes(plan);
  EXPECT_TRUE(diags.HasRule("plan.dtype.head")) << diags.ToString();
}

TEST(DtypeAnalysisTest, DetectsMixedDtypeBuffer) {
  // Two residents of buffer 0 with different declared storage dtypes.
  PlanIR plan = CleanChainPlan();
  plan.values[1].dtype = kernels::DType::kInt8;
  PlanValue other = Val4(0);
  plan.values.push_back(other);
  const DiagnosticList diags = AnalyzePlanDtypes(plan);
  EXPECT_TRUE(diags.HasRule("plan.dtype.buffer")) << diags.ToString();
}

TEST(DtypeAnalysisTest, QuantizedStepKeepsF32Storage) {
  // An int8 conv/linear step is the supported mixed-precision shape: it
  // quantizes at the input boundary and dequantizes at the output, so all
  // storage stays f32 and the analysis is silent.
  PlanIR plan = CleanChainPlan();
  plan.steps[0].dtype = kernels::DType::kInt8;
  EXPECT_TRUE(AnalyzePlanDtypes(plan).empty());
}

// ---------------------------------------------------------------------------
// Peak-memory certification
// ---------------------------------------------------------------------------

TEST(MemAnalysisTest, CertifiesTheCleanChainExactly) {
  const MemCertificate cert = CertifyPlanMemory(CleanChainPlan());
  // At step 1 both v1 (16 bytes) and head v2 (16 bytes) are live.
  EXPECT_EQ(cert.peak_bytes, 32);
  EXPECT_EQ(cert.peak_step, 1);
  EXPECT_EQ(cert.arena_bytes, 32);
}

TEST(MemAnalysisTest, CleanChainPassesWithSummaryNote) {
  const DiagnosticList diags = AnalyzePlanMemory(CleanChainPlan());
  EXPECT_TRUE(diags.ok()) << diags.ToString();
  EXPECT_TRUE(diags.HasRule("plan.mem.summary"));
}

TEST(MemAnalysisTest, SummaryNoteCanBeMuted) {
  MemAnalysisOptions options;
  options.summary = false;
  EXPECT_TRUE(AnalyzePlanMemory(CleanChainPlan(), options).empty());
}

TEST(MemAnalysisTest, DetectsUndersizedArena) {
  // Shrink the arena below the certified peak by pointing both values at one
  // shared buffer (the overlap is the verifier's finding; the arena shortfall
  // is the certifier's).
  PlanIR plan = CleanChainPlan();
  plan.values[2].buffer = 0;
  plan.buffers.pop_back();
  const DiagnosticList diags = AnalyzePlanMemory(plan);
  EXPECT_TRUE(diags.HasRule("plan.mem.arena")) << diags.ToString();
}

TEST(MemAnalysisTest, WarnsOnDeadArenaSlot) {
  PlanIR plan = CleanChainPlan();
  plan.buffers.push_back(PlanBuffer{4, true});  // no value ever lives here
  const DiagnosticList diags = AnalyzePlanMemory(plan);
  EXPECT_TRUE(diags.ok()) << diags.ToString();
  EXPECT_TRUE(diags.HasRule("plan.mem.buffer"));
}

TEST(MemAnalysisTest, WarnsOnWastefulArena) {
  PlanIR plan = CleanChainPlan();
  MemAnalysisOptions options;
  options.waste_factor = 1.0;
  options.slack_bytes = 0;
  plan.buffers[0].elems_per_sample = 4096;  // vastly oversized slot
  const DiagnosticList diags = AnalyzePlanMemory(plan, options);
  EXPECT_TRUE(diags.ok()) << diags.ToString();
  EXPECT_TRUE(diags.HasRule("plan.mem.waste"));
}

TEST(MemAnalysisTest, HeadsStayLiveToTheEnd) {
  // The head defined at step 0 must be counted live through the last step
  // even though no later step reads it.
  PlanIR plan;
  plan.values = {Val4(), Val4(0, /*head=*/true), Val4(1, /*head=*/true)};
  plan.groups.emplace_back();
  plan.buffers = {PlanBuffer{4, false}, PlanBuffer{4, false}};
  plan.steps = {LinearStep(0, 1), LinearStep(0, 2)};
  plan.head_values = {1, 2};
  IndexGroups(plan);
  const MemCertificate cert = CertifyPlanMemory(plan);
  EXPECT_EQ(cert.peak_bytes, 32);
  EXPECT_EQ(cert.peak_step, 1);
}

// ---------------------------------------------------------------------------
// Severity policy
// ---------------------------------------------------------------------------

DiagnosticList MixedDiags() {
  DiagnosticList diags;
  diags.Error("plan.buffer.overlap", "buffer 0") << "overlap";
  diags.Warning("plan.value.unused", "value v7") << "unused";
  diags.Note("plan.mem.summary", "plan") << "summary";
  return diags;
}

TEST(SeverityPolicyTest, WerrorPromotesMatchingWarnings) {
  AnalysisOptions options;
  options.werror = {"plan.value.unused"};
  AnalysisReport report;
  ApplySeverityPolicy(options, MixedDiags(), &report);
  EXPECT_EQ(report.promoted, 1);
  EXPECT_EQ(report.diags.error_count(), 2);
}

TEST(SeverityPolicyTest, WnoDropsWarningsAndNotesButNeverErrors) {
  AnalysisOptions options;
  options.wno = {"plan"};
  AnalysisReport report;
  ApplySeverityPolicy(options, MixedDiags(), &report);
  EXPECT_EQ(report.suppressed_wno, 2);  // the warning and the note
  EXPECT_EQ(report.diags.error_count(), 1);
  EXPECT_TRUE(report.diags.HasRule("plan.buffer.overlap"));
}

TEST(SeverityPolicyTest, WnoShieldsAWarningFromWerror) {
  AnalysisOptions options;
  options.wno = {"plan.value.unused"};
  options.werror = {"plan.value.unused"};
  AnalysisReport report;
  ApplySeverityPolicy(options, MixedDiags(), &report);
  EXPECT_EQ(report.promoted, 0);
  EXPECT_EQ(report.suppressed_wno, 1);
}

TEST(SeverityPolicyTest, BaselinePinsExactRuleAndPath) {
  const std::string path = ::testing::TempDir() + "/policy.baseline";
  {
    std::ofstream out(path);
    out << "# known findings\n";
    out << "plan.buffer.overlap buffer 0\n";
  }
  AnalysisOptions options;
  options.baseline_path = path;
  AnalysisReport report;
  ApplySeverityPolicy(options, MixedDiags(), &report);
  EXPECT_EQ(report.suppressed_baseline, 1);
  EXPECT_TRUE(report.diags.ok());  // the overlap error is baselined away

  // A different node path is a new finding and must not be suppressed.
  DiagnosticList moved;
  moved.Error("plan.buffer.overlap", "buffer 1") << "overlap elsewhere";
  AnalysisReport fresh;
  ApplySeverityPolicy(options, std::move(moved), &fresh);
  EXPECT_EQ(fresh.suppressed_baseline, 0);
  EXPECT_FALSE(fresh.diags.ok());
  std::remove(path.c_str());
}

TEST(SeverityPolicyTest, BaselineWithUnknownRuleIsUnreadable) {
  const std::string path = ::testing::TempDir() + "/bad.baseline";
  {
    std::ofstream out(path);
    out << "no.such.rule somewhere\n";
  }
  AnalysisOptions options;
  options.baseline_path = path;
  AnalysisReport report;
  ApplySeverityPolicy(options, MixedDiags(), &report);
  EXPECT_TRUE(report.unreadable);
  EXPECT_EQ(report.exit_code(), 2);
  std::remove(path.c_str());
}

TEST(SeverityPolicyTest, ValidateRejectsPatternsSelectingNothing) {
  AnalysisOptions options;
  options.werror = {"plan."};
  std::string error;
  EXPECT_TRUE(ValidateAnalysisOptions(options, &error));
  options.wno = {"not.a.rule"};
  EXPECT_FALSE(ValidateAnalysisOptions(options, &error));
  EXPECT_NE(error.find("not.a.rule"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AnalyzeFile: kind sniffing + exit codes over the testdata fixtures
// ---------------------------------------------------------------------------

TEST(AnalyzeFileTest, SniffsPlanAndReportsDefects) {
  const AnalysisReport report = AnalyzeFile(Testdata("plan_buffer_overlap.plan"), {});
  EXPECT_EQ(report.input_kind, "plan");
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_TRUE(report.diags.HasRule("plan.buffer.overlap"));
}

TEST(AnalyzeFileTest, RunsTheDataflowAnalysesOnPlans) {
  const AnalysisReport dtype = AnalyzeFile(Testdata("plan_dtype_int8_value.plan"), {});
  EXPECT_TRUE(dtype.diags.HasRule("plan.dtype.mismatch")) << dtype.diags.ToString();
  const AnalysisReport pool = AnalyzeFile(Testdata("plan_dtype_int8_pool.plan"), {});
  EXPECT_TRUE(pool.diags.HasRule("plan.dtype.step")) << pool.diags.ToString();
  const AnalysisReport mem = AnalyzeFile(Testdata("plan_mem_arena_short.plan"), {});
  EXPECT_TRUE(mem.diags.HasRule("plan.mem.arena")) << mem.diags.ToString();
}

TEST(AnalyzeFileTest, SniffsOtherArtifactKinds) {
  EXPECT_EQ(AnalyzeFile(Testdata("tunedb_corrupt.txt"), {}).input_kind, "tunedb");
  EXPECT_EQ(AnalyzeFile(Testdata("quantrecipe_corrupt.txt"), {}).input_kind, "quantrecipe");
  EXPECT_EQ(AnalyzeFile(Testdata("evalcache_corrupt.txt"), {}).input_kind, "evalcache");
  EXPECT_EQ(AnalyzeFile(Testdata("checkpoint_corrupt.ckpt"), {}).input_kind, "checkpoint");
}

TEST(AnalyzeFileTest, MissingFileIsUnreadable) {
  const AnalysisReport report = AnalyzeFile(Testdata("no_such_file.plan"), {});
  EXPECT_TRUE(report.unreadable);
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(AnalyzeFileTest, BaselineSuppressionReachesExitZero) {
  AnalysisOptions options;
  options.baseline_path = Testdata("verify_overlap.baseline");
  const AnalysisReport report = AnalyzeFile(Testdata("plan_buffer_overlap.plan"), options);
  EXPECT_EQ(report.suppressed_baseline, 1);
  EXPECT_EQ(report.exit_code(), 0) << report.diags.ToString();
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

AnalysisReport OverlapReport() {
  return AnalyzeFile(Testdata("plan_buffer_overlap.plan"), {});
}

TEST(RendererTest, TextMatchesHistoricalVerifyOutput) {
  const std::string text = RenderAnalysisText(OverlapReport());
  EXPECT_NE(text.find("error[plan.buffer.overlap] buffer 0:"), std::string::npos) << text;
  EXPECT_NE(text.find("verify: 1 error(s)"), std::string::npos) << text;
}

TEST(RendererTest, JsonCarriesTheEnvelopeAndEscapes) {
  AnalysisReport report;
  report.input_path = "a\"b";
  report.input_kind = "plan";
  report.diags.Error("plan.io.parse", "line 1") << "tab\there\nline";
  const std::string json = RenderAnalysisJson(report);
  EXPECT_NE(json.find("\"file\": \"a\\\"b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_code\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("tab\\there\\nline"), std::string::npos) << json;
}

TEST(RendererTest, SarifCarriesRuleMetadataFromTheRegistry) {
  const std::string sarif = RenderAnalysisSarif(OverlapReport());
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"gmorph\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"plan.buffer.overlap\""), std::string::npos);
  // The fired rule's registry metadata rides along for SARIF viewers.
  const RuleInfo* info = FindRule("plan.buffer.overlap");
  ASSERT_NE(info, nullptr);
  EXPECT_NE(sarif.find(info->description), std::string::npos);
}

TEST(RendererTest, SarifAndTextAgreeOnFiredRuleIds) {
  const AnalysisReport report = OverlapReport();
  const std::string text = RenderAnalysisText(report);
  const std::string sarif = RenderAnalysisSarif(report);
  for (const Diagnostic& d : report.diags.items()) {
    EXPECT_NE(text.find("[" + d.rule_id + "]"), std::string::npos) << d.rule_id;
    EXPECT_NE(sarif.find("\"ruleId\": \"" + d.rule_id + "\""), std::string::npos) << d.rule_id;
  }
}

}  // namespace
}  // namespace gmorph
