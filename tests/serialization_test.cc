#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/serialization.h"
#include "src/core/graph_io.h"
#include "src/core/model_parser.h"
#include "src/core/multitask_model.h"
#include "src/core/mutation.h"
#include "src/models/zoo.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "gmorph_ser_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(SerializationTest, WeightsRoundTrip) {
  Rng rng(1);
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 3;
  TaskModel model(MakeVgg11(opts), rng);
  const std::string path = Path("weights.bin");
  ASSERT_TRUE(SaveWeights(path, model.ExportWeights()));

  std::vector<std::vector<Tensor>> loaded;
  ASSERT_TRUE(LoadWeights(path, loaded));
  TaskModel reloaded(MakeVgg11(opts), rng);
  reloaded.ImportWeights(loaded);
  Tensor x = Tensor::RandomGaussian(Shape{1, 3, 32, 32}, rng);
  EXPECT_LT(testing::MaxDiff(model.Forward(x, false), reloaded.Forward(x, false)), 1e-6f);
}

TEST_F(SerializationTest, LoadRejectsMissingAndCorrupt) {
  std::vector<std::vector<Tensor>> loaded;
  EXPECT_FALSE(LoadWeights(Path("does_not_exist.bin"), loaded));
  const std::string junk = Path("junk.bin");
  std::FILE* f = std::fopen(junk.c_str(), "wb");
  std::fputs("not a weight file", f);
  std::fclose(f);
  EXPECT_FALSE(LoadWeights(junk, loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST_F(SerializationTest, TruncatedWeightsRejected) {
  Rng rng(2);
  VisionModelOptions opts;
  opts.base_width = 4;
  TaskModel model(MakeVgg11(opts), rng);
  const std::string path = Path("weights.bin");
  ASSERT_TRUE(SaveWeights(path, model.ExportWeights()));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  std::vector<std::vector<Tensor>> loaded;
  EXPECT_FALSE(LoadWeights(path, loaded));
}

TEST_F(SerializationTest, GraphRoundTripPreservesOutputs) {
  Rng rng(3);
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 3;
  TaskModel a(MakeVgg13(opts), rng);
  opts.classes = 2;
  TaskModel b(MakeVgg11(opts), rng);
  AbsGraph g = ParseTaskModels({&a, &b});
  // Mutate so the saved graph includes a non-trivial tree (and possibly a
  // rescale node).
  std::optional<AbsGraph> mutated = SampleMutatePass(g, 2, ShapeSimilarity::kSimilar, rng);
  ASSERT_TRUE(mutated.has_value());

  const std::string path = Path("graph.bin");
  ASSERT_TRUE(SaveGraph(path, *mutated));
  AbsGraph loaded;
  ASSERT_TRUE(LoadGraph(path, loaded));
  loaded.Validate();
  EXPECT_EQ(loaded.Fingerprint(), mutated->Fingerprint());

  // Fresh-initialized nodes (inserted rescales) draw from the constructor's
  // RNG, so each model gets an identically seeded stream.
  Rng rng_a(99);
  Rng rng_b(99);
  MultiTaskModel original_model(*mutated, rng_a);
  MultiTaskModel loaded_model(loaded, rng_b);
  Tensor x = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);
  std::vector<Tensor> want = original_model.Forward(x, false);
  std::vector<Tensor> got = loaded_model.Forward(x, false);
  ASSERT_EQ(want.size(), got.size());
  for (size_t t = 0; t < want.size(); ++t) {
    EXPECT_LT(testing::MaxDiff(want[t], got[t]), 1e-6f);
  }
}

TEST_F(SerializationTest, BatchNormBuffersSurviveExport) {
  // Running statistics are buffers, not parameters; a trained-and-exported
  // graph must reproduce eval-mode outputs exactly after reload.
  Rng rng(4);
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 2;
  TaskModel teacher(MakeResNet18(opts), rng);
  Tensor x = Tensor::RandomGaussian(Shape{4, 3, 32, 32}, rng);
  for (int i = 0; i < 5; ++i) {
    teacher.Forward(x, /*training=*/true);  // move running stats off defaults
  }
  AbsGraph g = ParseTaskModels({&teacher});
  Rng rng_a(5);
  Rng rng_b(5);
  MultiTaskModel model(g, rng_a);
  AbsGraph exported = model.ExportTrainedGraph();
  MultiTaskModel reloaded(exported, rng_b);
  Tensor probe = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);
  EXPECT_LT(testing::MaxDiff(model.Forward(probe, false)[0],
                             reloaded.Forward(probe, false)[0]),
            1e-6f);
  // Teacher and graph-built model agree in eval mode too (buffers traveled
  // through the parser).
  EXPECT_LT(testing::MaxDiff(teacher.Forward(probe, false), model.Forward(probe, false)[0]),
            1e-4f);
}

TEST_F(SerializationTest, GraphLoadRejectsCorrupt) {
  AbsGraph g;
  EXPECT_FALSE(LoadGraph(Path("missing.bin"), g));
  const std::string junk = Path("junk_graph.bin");
  std::FILE* f = std::fopen(junk.c_str(), "wb");
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_FALSE(LoadGraph(junk, g));
}

// Regression coverage for the diagnostic-returning loader: every corruption
// class maps to a stable io.* rule id and never a partially-built graph.
class GraphIoTest : public SerializationTest {
 protected:
  AbsGraph SampleGraph() {
    Rng rng(11);
    VisionModelOptions opts;
    opts.base_width = 4;
    opts.classes = 2;
    TaskModel a(MakeVgg11(opts), rng);
    TaskModel b(MakeVgg11(opts), rng);
    return ParseTaskModels({&a, &b});
  }

  std::string SavedGraphBytes() {
    const std::string path = Path("sample.bin");
    if (!SaveGraph(path, SampleGraph())) {
      return "";
    }
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  GraphLoadResult LoadBytes(const std::string& bytes) {
    std::istringstream in(bytes);
    return TryLoadGraph(in);
  }
};

TEST_F(GraphIoTest, MissingFileReportsOpen) {
  GraphLoadResult result = TryLoadGraph(Path("nope.bin"));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.graph.has_value());
  EXPECT_TRUE(result.diagnostics.HasRule("io.open"));
}

TEST_F(GraphIoTest, BadMagicReportsMagic) {
  GraphLoadResult result = LoadBytes("this is not a gmorph graph file at all....");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.diagnostics.HasRule("io.magic"));
}

TEST_F(GraphIoTest, TruncatedFileReportsTruncated) {
  const std::string bytes = SavedGraphBytes();
  ASSERT_FALSE(bytes.empty());
  GraphLoadResult result = LoadBytes(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.graph.has_value());
  EXPECT_TRUE(result.diagnostics.HasRule("io.truncated"));
}

TEST_F(GraphIoTest, InsaneNodeCountReportsHeader) {
  std::string bytes = SavedGraphBytes();
  ASSERT_GE(bytes.size(), 24u);
  // Bytes [16,24) hold the node count; blow it past the 2^20 cap.
  const int64_t huge = int64_t{1} << 40;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  GraphLoadResult result = LoadBytes(bytes);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.diagnostics.HasRule("io.header"));
}

TEST_F(GraphIoTest, CleanFileRoundTripsThroughVerifier) {
  const std::string bytes = SavedGraphBytes();
  ASSERT_FALSE(bytes.empty());
  GraphLoadResult result = LoadBytes(bytes);
  ASSERT_TRUE(result.ok()) << result.diagnostics.ToString();
  EXPECT_EQ(result.graph->Fingerprint(), SampleGraph().Fingerprint());
  EXPECT_TRUE(result.diagnostics.ok());
}

}  // namespace
}  // namespace gmorph
