// Serving flight recorder: the disabled fast path, the lock-free ring's
// wraparound discipline (oldest dropped, order preserved, never torn), and
// the JSON export. The tests drive the recorder directly; the end-to-end
// accounting against the threaded server lives in threaded_serving_test.cc.
#include "src/serving/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace gmorph {
namespace {

// Every test starts from a quiesced, empty recorder and leaves it disabled —
// the recorder is process-global state shared with the serving tests.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StopFlightRecorder();
    ClearFlightRecorder();
  }
  void TearDown() override {
    StopFlightRecorder();
    ClearFlightRecorder();
  }
};

TEST_F(FlightRecorderTest, DisabledRecordsNothing) {
  ASSERT_FALSE(FlightRecorderEnabled());
  const uint64_t before = FlightTotalRecorded();
  for (int i = 0; i < 100; ++i) {
    RecordFlightEvent(FlightEventKind::kAdmit, 1.0, i);
  }
  EXPECT_EQ(FlightTotalRecorded(), before);
  EXPECT_EQ(FlightEventCount(), 0u);
  EXPECT_TRUE(FlightRecorderSnapshot().empty());
}

TEST_F(FlightRecorderTest, RecordsLifecycleInOrder) {
  StartFlightRecorder();
  RecordFlightEvent(FlightEventKind::kAdmit, 0.5, 7);
  RecordFlightEvent(FlightEventKind::kEnqueue, 0.5, 7);
  RecordFlightEvent(FlightEventKind::kBatchFormed, 1.0, 1, /*aux=*/0);
  RecordFlightEvent(FlightEventKind::kRunStart, 1.0, 7, /*aux=*/0);
  RecordFlightEvent(FlightEventKind::kDone, 2.25, 7, /*aux=*/0);

  const std::vector<FlightEvent> events = FlightRecorderSnapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kAdmit);
  EXPECT_EQ(events[4].kind, FlightEventKind::kDone);
  EXPECT_EQ(events[4].request, 7);
  EXPECT_EQ(events[4].aux, 0);
  EXPECT_DOUBLE_EQ(events[4].t_ms, 2.25);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(FlightDroppedCount(), 0u);
}

TEST_F(FlightRecorderTest, KindNamesAreStable) {
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kAdmit), "admit");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kShed), "shed");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kEnqueue), "enqueue");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kBatchFormed), "batch-formed");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kRunStart), "run-start");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kDone), "done");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kSwap), "swap");
}

TEST_F(FlightRecorderTest, WraparoundDropsOldestAndPreservesOrder) {
  StartFlightRecorder();
  const size_t capacity = FlightRecorderCapacity();
  const size_t overflow = 100;
  for (size_t i = 0; i < capacity + overflow; ++i) {
    RecordFlightEvent(FlightEventKind::kAdmit, static_cast<double>(i),
                      static_cast<int64_t>(i));
  }
  EXPECT_EQ(FlightTotalRecorded(), capacity + overflow);
  EXPECT_EQ(FlightEventCount(), capacity);
  EXPECT_EQ(FlightDroppedCount(), overflow);

  const std::vector<FlightEvent> events = FlightRecorderSnapshot();
  ASSERT_EQ(events.size(), capacity);
  // The oldest `overflow` events were overwritten; what remains starts right
  // after them and stays strictly ordered.
  EXPECT_EQ(events.front().request, static_cast<int64_t>(overflow));
  EXPECT_EQ(events.back().request, static_cast<int64_t>(capacity + overflow - 1));
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_EQ(events[i].request, events[i - 1].request + 1);
  }
}

TEST_F(FlightRecorderTest, ClearKeepsRecordingState) {
  StartFlightRecorder();
  RecordFlightEvent(FlightEventKind::kAdmit, 0.0, 1);
  ClearFlightRecorder();
  EXPECT_TRUE(FlightRecorderEnabled());
  EXPECT_EQ(FlightEventCount(), 0u);
  RecordFlightEvent(FlightEventKind::kAdmit, 0.0, 2);
  EXPECT_EQ(FlightEventCount(), 1u);
}

TEST_F(FlightRecorderTest, ConcurrentWritersLoseNothingBelowCapacity) {
  StartFlightRecorder();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        RecordFlightEvent(FlightEventKind::kEnqueue, 0.0, t * kPerThread + i);
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }
  ASSERT_LE(static_cast<size_t>(kThreads * kPerThread), FlightRecorderCapacity());
  EXPECT_EQ(FlightTotalRecorded(), static_cast<uint64_t>(kThreads * kPerThread));
  const std::vector<FlightEvent> events = FlightRecorderSnapshot();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  // Every request index lands exactly once.
  std::vector<int> seen(kThreads * kPerThread, 0);
  for (const FlightEvent& e : events) {
    ASSERT_GE(e.request, 0);
    ASSERT_LT(e.request, kThreads * kPerThread);
    ++seen[static_cast<size_t>(e.request)];
  }
  for (int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST_F(FlightRecorderTest, JsonDumpRoundTripsThroughAFile) {
  StartFlightRecorder();
  RecordFlightEvent(FlightEventKind::kAdmit, 1.5, 3);
  RecordFlightEvent(FlightEventKind::kShed, 1.5, 3);
  const std::string json = FlightRecorderToJson();
  EXPECT_NE(json.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"shed\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "/flight_dump.json";
  ASSERT_TRUE(WriteFlightRecorderJson(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json + "\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gmorph
