#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/tensor/shape.h"

namespace gmorph {
namespace {

TEST(ShapeTest, BasicAccessors) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.Rank(), 3);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[-1], 4);
  EXPECT_EQ(s[-3], 2);
  EXPECT_EQ(s.ToString(), "(2,3,4)");
}

TEST(ShapeTest, OutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.Dim(2), CheckError);
  EXPECT_THROW(s.Dim(-3), CheckError);
}

TEST(ShapeTest, BatchHelpers) {
  Shape s{3, 8, 8};
  EXPECT_EQ(s.WithBatch(16).dims(), (std::vector<int64_t>{16, 3, 8, 8}));
  EXPECT_EQ(s.WithBatch(16).WithoutBatch(), s);
}

TEST(ShapeTest, Ordering) {
  EXPECT_LT(Shape({1, 2}), Shape({1, 3}));
  EXPECT_LT(Shape({1}), Shape({1, 0}));
  EXPECT_EQ(Shape({4, 4}), Shape({4, 4}));
  EXPECT_NE(Shape({4, 4}), Shape({4, 5}));
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.at(i), 0.0f);
  }
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full(Shape{4}, 2.5f);
  EXPECT_EQ(t.at(3), 2.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t.at(0), -1.0f);
}

TEST(TensorTest, FromVectorChecksSize) {
  EXPECT_NO_THROW(Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::FromVector(Shape{2, 2}, {1, 2, 3}), CheckError);
}

TEST(TensorTest, CopySharesStorageCloneDoesNot) {
  Tensor a = Tensor::Full(Shape{3}, 1.0f);
  Tensor b = a;                // handle copy
  Tensor c = a.Clone();        // deep copy
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_FALSE(a.SharesStorageWith(c));
  b.at(0) = 9.0f;
  EXPECT_EQ(a.at(0), 9.0f);
  EXPECT_EQ(c.at(0), 1.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a(Shape{2, 6});
  Tensor b = a.Reshape(Shape{3, 4});
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_THROW(a.Reshape(Shape{5}), CheckError);
}

TEST(TensorTest, RandomGaussianStddev) {
  Rng rng(3);
  Tensor t = Tensor::RandomGaussian(Shape{10000}, rng, 0.5f);
  double sq = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    sq += static_cast<double>(t.at(i)) * t.at(i);
  }
  EXPECT_NEAR(sq / static_cast<double>(t.size()), 0.25, 0.02);
}

TEST(TensorTest, RandomUniformBounds) {
  Rng rng(5);
  Tensor t = Tensor::RandomUniform(Shape{1000}, rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.at(i), -2.0f);
    EXPECT_LT(t.at(i), 3.0f);
  }
}

TEST(TensorTest, DefaultTensorIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

}  // namespace
}  // namespace gmorph
