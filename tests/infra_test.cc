// Tests for thread pool, ParallelFor, config parsing, DOT export, and the
// parallel search mode.
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/config.h"
#include "src/common/parallel_for.h"
#include "src/common/thread_pool.h"
#include "src/core/dot_export.h"
#include "src/core/gmorph.h"
#include "src/core/model_parser.h"
#include "src/core/mutation.h"
#include "src/data/benchmarks.h"
#include "src/data/teacher.h"
#include "src/models/zoo.h"

namespace gmorph {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitAllOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitAll();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitAll();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, WaitAllRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) {
        throw std::runtime_error("task failed");
      }
    });
  }
  EXPECT_THROW(pool.WaitAll(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the exception does not abandon queued tasks

  // The exception is cleared by the rethrow: the pool stays usable.
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitAll();  // must not rethrow again
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, RunningTasksMaySubmitMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.WaitAll();  // must count the nested submissions as in-flight
  EXPECT_EQ(counter.load(), 8);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) {
    h.store(0);
  }
  ParallelFor(3, kN, 7, [&](int64_t lo, int64_t hi) {
    EXPECT_LE(hi - lo, 7);
    for (int64_t i = lo; i < hi; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), i >= 3 ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelForTest, RethrowsExceptionFromChunk) {
  EXPECT_THROW(ParallelFor(0, 100, 10,
                           [](int64_t lo, int64_t) {
                             if (lo == 50) {
                               throw std::runtime_error("chunk failed");
                             }
                           }),
               std::runtime_error);
  // Later calls still work.
  std::atomic<int> n{0};
  ParallelFor(0, 100, 10, [&](int64_t lo, int64_t hi) { n.fetch_add(static_cast<int>(hi - lo)); });
  EXPECT_EQ(n.load(), 100);
}

TEST(ParallelForTest, NestedCallsRunSeriallyOnCallingThread) {
  const int restore = KernelThreads();
  SetKernelThreads(4);
  // Inside a ParallelFor task the nested call must stay on that task's thread.
  std::atomic<bool> nested_ok{true};
  ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    EXPECT_TRUE(InParallelRegion());
    const std::thread::id outer = std::this_thread::get_id();
    ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
      if (std::this_thread::get_id() != outer) {
        nested_ok.store(false);
      }
    });
  });
  EXPECT_TRUE(nested_ok.load());
  SetKernelThreads(restore);
}

TEST(ParallelForTest, RegionGuardForcesSerialExecution) {
  const int restore = KernelThreads();
  SetKernelThreads(4);
  EXPECT_FALSE(InParallelRegion());
  {
    // Models a search worker that owns its parallelism: kernel-level
    // ParallelFor calls under the guard must not fan out to the pool.
    ParallelRegionGuard guard;
    EXPECT_TRUE(InParallelRegion());
    const std::thread::id self = std::this_thread::get_id();
    std::atomic<bool> same_thread{true};
    ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
      if (std::this_thread::get_id() != self) {
        same_thread.store(false);
      }
    });
    EXPECT_TRUE(same_thread.load());
  }
  EXPECT_FALSE(InParallelRegion());
  SetKernelThreads(restore);
}

TEST(ConfigTest, ParsesTypesAndComments) {
  Config c = Config::FromString(
      "# a comment\n"
      "name = my experiment  # trailing comment\n"
      "iterations = 42\n"
      "threshold = 0.015\n"
      "  enabled =  true \n"
      "\n");
  EXPECT_EQ(c.GetString("name", ""), "my experiment");
  EXPECT_EQ(c.GetInt("iterations", 0), 42);
  EXPECT_DOUBLE_EQ(c.GetDouble("threshold", 0.0), 0.015);
  EXPECT_TRUE(c.GetBool("enabled", false));
  EXPECT_FALSE(c.Has("missing"));
  EXPECT_EQ(c.GetInt("missing", 7), 7);
}

TEST(ConfigTest, BoolSpellings) {
  Config c = Config::FromString("a = YES\nb = 0\nc = On\nd = false\n");
  EXPECT_TRUE(c.GetBool("a", false));
  EXPECT_FALSE(c.GetBool("b", true));
  EXPECT_TRUE(c.GetBool("c", false));
  EXPECT_FALSE(c.GetBool("d", true));
}

TEST(ConfigTest, MalformedInputsThrow) {
  EXPECT_THROW(Config::FromString("no equals sign here\n"), CheckError);
  EXPECT_THROW(Config::FromString("= value\n"), CheckError);
  Config c = Config::FromString("x = abc\ny = 1.5\n");
  EXPECT_THROW(c.GetInt("x", 0), CheckError);
  EXPECT_THROW(c.GetBool("x", false), CheckError);
  EXPECT_THROW(c.GetInt("y", 0), CheckError);  // trailing chars after int
  EXPECT_THROW(Config::FromFile("/nonexistent/path.cfg"), CheckError);
}

TEST(DotExportTest, ContainsNodesEdgesAndSharingMarkers) {
  Rng rng(3);
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 2;
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts), MakeVgg11(opts)});
  // Create one shared prefix so a shared node exists.
  const int second0 = g.node(g.node(g.root()).children[0]).children[0];
  const int second1 = g.node(g.node(g.root()).children[1]).children[0];
  ASSERT_TRUE(ApplyMutation(g, {second0, second1}));

  const std::string dot = ToDot(g, "test \"graph\"");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\\\"graph\\\""), std::string::npos);  // escaped title
  EXPECT_NE(dot.find("input"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);  // shared-node marker
  // One node statement per graph node.
  size_t node_count = 0;
  for (size_t pos = dot.find("[label="); pos != std::string::npos;
       pos = dot.find("[label=", pos + 1)) {
    ++node_count;
  }
  EXPECT_EQ(node_count, static_cast<size_t>(g.size()));
}

TEST(ParallelGMorphTest, ParallelRoundsMatchBudgetAndStayValid) {
  BenchmarkScale scale;
  scale.train_size = 48;
  scale.test_size = 32;
  scale.cnn_width = 4;
  BenchmarkDef def = MakeBenchmark(1, scale, 51);
  Rng rng(51);
  std::vector<std::unique_ptr<TaskModel>> teachers;
  std::vector<TaskModel*> ptrs;
  for (size_t t = 0; t < def.tasks.size(); ++t) {
    teachers.push_back(std::make_unique<TaskModel>(def.tasks[t].model, rng));
    TeacherTrainOptions topts;
    topts.epochs = 1;
    TrainTeacher(*teachers.back(), def.train, def.test, t, topts);
    ptrs.push_back(teachers.back().get());
  }
  GMorphOptions options;
  options.iterations = 6;
  options.accuracy_drop_threshold = 0.2;
  options.finetune.max_epochs = 1;
  options.finetune.eval_interval = 1;
  options.latency.measured_runs = 2;
  options.parallel_candidates = 3;
  options.num_threads = 2;
  options.seed = 5;
  GMorph gmorph(ptrs, &def.train, &def.test, options);
  GMorphResult r = gmorph.Run();
  EXPECT_EQ(r.trace.size(), 6u);
  EXPECT_GE(r.speedup, 1.0);
  r.best_graph.Validate();
  // Iterations numbered 1..N in order despite parallel evaluation.
  for (size_t i = 0; i < r.trace.size(); ++i) {
    EXPECT_EQ(r.trace[i].iteration, static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace gmorph
