// End-to-end integration tests for the GMorph driver (Algorithm 1).
#include "src/core/gmorph.h"

#include <gtest/gtest.h>

#include "src/data/benchmarks.h"
#include "src/data/teacher.h"

namespace gmorph {
namespace {

struct Prepared {
  BenchmarkDef def;
  std::vector<std::unique_ptr<TaskModel>> teachers;
  std::vector<TaskModel*> ptrs;
};

Prepared Prepare(int bench_index, uint64_t seed) {
  BenchmarkScale scale;
  scale.train_size = 48;
  scale.test_size = 32;
  scale.cnn_width = 4;
  Prepared p;
  p.def = MakeBenchmark(bench_index, scale, seed);
  Rng rng(seed);
  for (size_t t = 0; t < p.def.tasks.size(); ++t) {
    p.teachers.push_back(std::make_unique<TaskModel>(p.def.tasks[t].model, rng));
    TeacherTrainOptions topts;
    topts.epochs = 2;
    TrainTeacher(*p.teachers.back(), p.def.train, p.def.test, t, topts);
    p.ptrs.push_back(p.teachers.back().get());
  }
  return p;
}

GMorphOptions FastOptions() {
  GMorphOptions o;
  o.iterations = 4;
  o.accuracy_drop_threshold = 0.10;
  o.finetune.max_epochs = 2;
  o.finetune.eval_interval = 1;
  o.latency.measured_runs = 3;
  o.seed = 3;
  return o;
}

TEST(GMorphIntegrationTest, NeverReturnsSlowerThanOriginal) {
  Prepared p = Prepare(1, 21);
  GMorph gmorph(p.ptrs, &p.def.train, &p.def.test, FastOptions());
  GMorphResult r = gmorph.Run();
  EXPECT_LE(r.best_latency_ms, r.original_latency_ms + 1e-9);
  EXPECT_GE(r.speedup, 1.0);
  EXPECT_EQ(r.teacher_scores.size(), p.ptrs.size());
  r.best_graph.Validate();
}

TEST(GMorphIntegrationTest, BestModelMeetsAccuracyTarget) {
  Prepared p = Prepare(1, 23);
  GMorphOptions opts = FastOptions();
  opts.iterations = 6;
  GMorph gmorph(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r = gmorph.Run();
  if (r.found_improvement) {
    for (size_t t = 0; t < r.best_task_scores.size(); ++t) {
      EXPECT_GE(r.best_task_scores[t],
                r.teacher_scores[t] - opts.accuracy_drop_threshold - 1e-9);
    }
  }
}

TEST(GMorphIntegrationTest, TraceIsConsistent) {
  Prepared p = Prepare(1, 25);
  GMorphOptions opts = FastOptions();
  GMorph gmorph(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r = gmorph.Run();
  EXPECT_EQ(r.trace.size(), static_cast<size_t>(opts.iterations));
  double prev_elapsed = 0.0;
  double prev_best = r.original_latency_ms;
  for (const IterationRecord& rec : r.trace) {
    EXPECT_GE(rec.elapsed_seconds, prev_elapsed);
    prev_elapsed = rec.elapsed_seconds;
    EXPECT_LE(rec.best_latency_ms, prev_best + 1e-9);
    prev_best = rec.best_latency_ms;
  }
  EXPECT_GT(r.search_seconds, 0.0);
}

TEST(GMorphIntegrationTest, RuleFilteringSkipsCandidates) {
  Prepared p = Prepare(1, 27);
  GMorphOptions opts = FastOptions();
  opts.iterations = 8;
  // Impossible target: every candidate is non-promising, so later aggressive
  // candidates must be rule-filtered without fine-tuning.
  opts.accuracy_drop_threshold = -1.0;
  opts.rule_based_filtering = true;
  GMorph gmorph(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r = gmorph.Run();
  EXPECT_FALSE(r.found_improvement);
  EXPECT_GT(r.candidates_filtered + r.candidates_finetuned, 0);
}

TEST(GMorphIntegrationTest, RandomPolicyRuns) {
  Prepared p = Prepare(1, 29);
  GMorphOptions opts = FastOptions();
  opts.policy = PolicyKind::kRandom;
  GMorph gmorph(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r = gmorph.Run();
  EXPECT_GE(r.speedup, 1.0);
}

TEST(GMorphIntegrationTest, FlopsMetricSelectsByFlops) {
  Prepared p = Prepare(1, 31);
  GMorphOptions opts = FastOptions();
  opts.metric = OptimizeMetric::kFlops;
  opts.iterations = 6;
  GMorph gmorph(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r = gmorph.Run();
  EXPECT_LE(r.best_flops, r.original_flops);
}

TEST(GMorphIntegrationTest, TransformerBenchmarkRuns) {
  Prepared p = Prepare(7, 33);
  GMorphOptions opts = FastOptions();
  opts.iterations = 3;
  GMorph gmorph(p.ptrs, &p.def.train, &p.def.test, opts);
  GMorphResult r = gmorph.Run();
  EXPECT_GE(r.speedup, 1.0);
  r.best_graph.Validate();
}

}  // namespace
}  // namespace gmorph
