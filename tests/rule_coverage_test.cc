// Dead-rule detector: every registered plan.* / graph.* rule must be firable
// by a seeded defect. Each scenario below corrupts a clean artifact in one
// deliberate way and asserts its target rule fires; the final check walks the
// registry and fails if any plan./graph. rule was never produced by any
// scenario — a rule nothing can trigger is dead weight in the catalog (or,
// worse, a check that silently stopped working).
#include <algorithm>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/diagnostics.h"
#include "src/analysis/driver.h"
#include "src/analysis/dtype_analysis.h"
#include "src/analysis/graph_verifier.h"
#include "src/analysis/mem_analysis.h"
#include "src/analysis/plan_io.h"
#include "src/analysis/plan_verifier.h"
#include "src/analysis/rules.h"
#include "src/core/model_parser.h"
#include "src/data/benchmarks.h"
#include "src/tensor/tensor.h"

#ifndef GMORPH_TESTDATA_DIR
#define GMORPH_TESTDATA_DIR "tests/testdata"
#endif

namespace gmorph {
namespace {

std::string Testdata(const char* file) {
  return std::string(GMORPH_TESTDATA_DIR) + "/" + file;
}

// ---------------------------------------------------------------------------
// Graph scenario helpers
// ---------------------------------------------------------------------------

AbsGraph BenchmarkGraph(int index) {
  BenchmarkScale scale;
  scale.train_size = 1;
  scale.test_size = 1;
  scale.cnn_width = 4;
  BenchmarkDef def = MakeBenchmark(index, scale, 123);
  std::vector<ModelSpec> specs;
  for (const BenchmarkTask& task : def.tasks) {
    specs.push_back(task.model);
  }
  return ParseModelSpecs(specs);
}

template <typename Fn>
AbsGraph CorruptGraph(Fn&& corrupt) {
  AbsGraph g = BenchmarkGraph(1);
  std::vector<AbsNode> nodes = g.nodes();
  corrupt(nodes);
  return AbsGraph::FromNodesUnchecked(std::move(nodes), g.num_tasks());
}

int FindHead(const std::vector<AbsNode>& nodes) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].IsHead()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// A non-root node whose input is rank 3 (a conv-stack interior node), for the
// rescale-adapter scenarios.
int FindRank3(const std::vector<AbsNode>& nodes) {
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].input_shape.Rank() == 3 && !nodes[i].IsHead()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Plan scenario helpers (same minimal chain the verifier tests use)
// ---------------------------------------------------------------------------

PlanStep LinearStep(int in, int out, int group = 0) {
  PlanStep s;
  s.kind = PlanOp::kLinear;
  s.in0 = in;
  s.out = out;
  s.group = group;
  s.weight_shape = Shape{4, 4};
  return s;
}

PlanValue Val4(int buffer = -1, bool head = false) {
  PlanValue v;
  v.shape = Shape{4};
  v.buffer = buffer;
  v.is_head = head;
  return v;
}

void IndexGroups(PlanIR& plan) {
  for (int s = 0; s < static_cast<int>(plan.steps.size()); ++s) {
    plan.groups[static_cast<size_t>(plan.steps[static_cast<size_t>(s)].group)].steps.push_back(s);
  }
  for (int g = 1; g < static_cast<int>(plan.groups.size()); ++g) {
    plan.groups[static_cast<size_t>(plan.groups[static_cast<size_t>(g)].parent)]
        .children.push_back(g);
  }
}

PlanIR CleanChainPlan() {
  PlanIR plan;
  plan.values = {Val4(), Val4(0), Val4(1, /*head=*/true)};
  plan.groups.emplace_back();
  plan.buffers = {PlanBuffer{4, true}, PlanBuffer{4, false}};
  plan.steps = {LinearStep(0, 1), LinearStep(1, 2)};
  plan.head_values = {2};
  IndexGroups(plan);
  return plan;
}

// Mutates the clean chain and verifies the result.
DiagnosticList CorruptChain(const std::function<void(PlanIR&)>& corrupt) {
  PlanIR plan = CleanChainPlan();
  corrupt(plan);
  return VerifyPlan(plan);
}

// A (1,4,4) -> maxpool -> (1,2,2) head plan, for the pool-solver scenarios.
PlanIR PoolPlan(int64_t pool_k, int64_t pool_s) {
  PlanIR plan;
  PlanValue in;
  in.shape = Shape{1, 4, 4};
  PlanValue out;
  out.shape = Shape{1, (4 - pool_k) / pool_s + 1, (4 - pool_k) / pool_s + 1};
  out.buffer = 0;
  out.is_head = true;
  plan.values = {in, out};
  plan.groups.emplace_back();
  plan.buffers = {PlanBuffer{out.shape.NumElements(), false}};
  PlanStep step;
  step.kind = PlanOp::kMaxPool;
  step.in0 = 0;
  step.out = 1;
  step.pool_kernel = pool_k;
  step.pool_stride = pool_s;
  plan.steps = {step};
  plan.head_values = {1};
  IndexGroups(plan);
  return plan;
}

DiagnosticList VerifyTestdataPlan(const char* file) {
  PlanParseResult parsed = ParsePlanTextFile(Testdata(file));
  DiagnosticList diags = std::move(parsed.diagnostics);
  diags.Merge(VerifyPlan(parsed.plan));
  return diags;
}

DiagnosticList RunFullPlanPasses(const char* file) {
  PlanParseResult parsed = ParsePlanTextFile(Testdata(file));
  return RunPlanPasses(parsed.plan);
}

// ---------------------------------------------------------------------------
// The scenario table
// ---------------------------------------------------------------------------

struct Scenario {
  const char* rule;  // the rule this defect is seeded to trigger
  std::function<DiagnosticList()> run;
};

std::vector<Scenario> GraphScenarios() {
  return {
      {"graph.root",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           nodes[1].parent = -1;  // secondary root
         }));
       }},
      {"graph.tasks.range",
       [] {
         AbsGraph g = BenchmarkGraph(1);
         return VerifyGraph(AbsGraph::FromNodesUnchecked(g.nodes(), g.size() + 1));
       }},
      {"graph.node.index",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           nodes.back().parent = 9999;
         }));
       }},
      {"graph.tree.link",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           for (AbsNode& n : nodes) {
             if (!n.children.empty()) {
               n.children.push_back(n.children.front());
               break;
             }
           }
         }));
       }},
      {"graph.tree.reach",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           // Detach the last two nodes into a mutual 2-cycle: internally
           // consistent links, but no path from the root reaches them.
           const int i = static_cast<int>(nodes.size()) - 1;
           const int j = static_cast<int>(nodes.size()) - 2;
           for (AbsNode& n : nodes) {
             n.children.erase(std::remove(n.children.begin(), n.children.end(), i),
                              n.children.end());
             n.children.erase(std::remove(n.children.begin(), n.children.end(), j),
                              n.children.end());
           }
           nodes[static_cast<size_t>(i)].parent = j;
           nodes[static_cast<size_t>(i)].children = {j};
           nodes[static_cast<size_t>(j)].parent = i;
           nodes[static_cast<size_t>(j)].children = {i};
         }));
       }},
      {"graph.shape.infer",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           nodes.back().output_shape = Shape{12345};
         }));
       }},
      {"graph.spec.type",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           nodes.back().spec.type = static_cast<BlockType>(99);
         }));
       }},
      {"graph.shape.edge",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           nodes.back().input_shape = Shape{1, 2, 3};
         }));
       }},
      {"graph.capacity.stale",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           nodes.back().capacity += 100;
         }));
       }},
      {"graph.weights.mismatch",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           AbsNode& n = nodes.back();
           n.weights.push_back(Tensor{Shape{n.capacity + 1}});
         }));
       }},
      {"graph.head.task",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           nodes[static_cast<size_t>(FindHead(nodes))].task_id = 42;
         }));
       }},
      {"graph.head.count",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           // Reassign one head to another task: its own task has none left.
           AbsNode& head = nodes[static_cast<size_t>(FindHead(nodes))];
           head.task_id = head.task_id == 0 ? 1 : 0;
         }));
       }},
      {"graph.head.leaf",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           nodes[static_cast<size_t>(FindHead(nodes))].children.push_back(0);
         }));
       }},
      {"graph.leaf.dangling",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           for (AbsNode& n : nodes) {
             if (!n.children.empty() && n.parent >= 0) {
               n.children.clear();  // interior node becomes a dead branch
               break;
             }
           }
         }));
       }},
      {"graph.rescale.legal",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           AbsNode& n = nodes[static_cast<size_t>(FindRank3(nodes))];
           n.spec.type = BlockType::kRescale;
           n.spec.rescale_in = Shape{9, 9, 9};  // edges carry something else
           n.spec.rescale_out = Shape{8, 8, 8};
         }));
       }},
      {"graph.rescale.identity",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           AbsNode& n = nodes[static_cast<size_t>(FindRank3(nodes))];
           n.spec.type = BlockType::kRescale;
           n.spec.rescale_in = n.input_shape;
           n.spec.rescale_out = n.input_shape;
           n.output_shape = n.input_shape;
         }));
       }},
      {"graph.share.dissimilar",
       [] {
         return VerifyGraph(CorruptGraph([](std::vector<AbsNode>& nodes) {
           AbsNode& n = nodes[static_cast<size_t>(FindRank3(nodes))];
           // Same rank but no dimension in common: feasible yet dissimilar.
           const Shape out{n.input_shape[0] + 1, n.input_shape[1] + 1, n.input_shape[2] + 1};
           n.spec.type = BlockType::kRescale;
           n.spec.rescale_in = n.input_shape;
           n.spec.rescale_out = out;
           n.output_shape = out;
         }));
       }},
      {"graph.roundtrip",
       [] {
         // A graph every semantic check accepts, but whose serialized form
         // the loader rejects: 65 weight tensors on one node (the loader
         // caps weight lists at 64) summing exactly to its capacity, so
         // graph.weights.mismatch stays silent and only the round trip fails.
         AbsGraph g = BenchmarkGraph(1);
         std::vector<AbsNode> nodes = g.nodes();
         for (AbsNode& n : nodes) {
           if (n.capacity >= 65 && n.weights.empty()) {
             for (int i = 0; i < 64; ++i) {
               n.weights.push_back(Tensor{Shape{1}});
             }
             n.weights.push_back(Tensor{Shape{n.capacity - 64}});
             break;
           }
         }
         GraphVerifyOptions opts;
         opts.roundtrip = true;
         return VerifyGraph(AbsGraph::FromNodesUnchecked(std::move(nodes), g.num_tasks()),
                            opts);
       }},
  };
}

std::vector<Scenario> PlanScenarios() {
  return {
      // ---- Structural indices --------------------------------------------
      {"plan.value.index",
       [] { return CorruptChain([](PlanIR& p) { p.values[1].alias_of = 1; }); }},
      {"plan.group.index", [] { return CorruptChain([](PlanIR& p) { p.groups.clear(); }); }},
      {"plan.buffer.index",
       [] { return CorruptChain([](PlanIR& p) { p.values[1].buffer = 7; }); }},
      {"plan.step.index", [] { return CorruptChain([](PlanIR& p) { p.steps[0].in0 = 99; }); }},
      // ---- Aliases --------------------------------------------------------
      {"plan.alias.cycle",
       [] {
         return CorruptChain([](PlanIR& p) {
           PlanValue a = Val4();
           a.alias_of = 4;
           PlanValue b = Val4();
           b.alias_of = 3;
           p.values.push_back(a);
           p.values.push_back(b);
         });
       }},
      {"plan.alias.shape",
       [] {
         return CorruptChain([](PlanIR& p) {
           PlanValue v;
           v.shape = Shape{8};  // 8 elems viewing a 4-elem root
           v.alias_of = 1;
           p.values.push_back(v);
         });
       }},
      {"plan.buffer.alias",
       [] {
         return CorruptChain([](PlanIR& p) {
           PlanValue v = Val4(0);
           v.alias_of = 1;  // a view must not own an arena slot
           p.values.push_back(v);
         });
       }},
      {"plan.alias.stale", [] { return VerifyTestdataPlan("plan_stale_alias.plan"); }},
      // ---- Group tree and ordering ---------------------------------------
      {"plan.group.tree",
       [] { return CorruptChain([](PlanIR& p) { p.groups.emplace_back(); }); }},  // parentless
      {"plan.group.member",
       [] { return CorruptChain([](PlanIR& p) { p.groups[0].steps = {0}; }); }},
      {"plan.group.order",
       [] { return CorruptChain([](PlanIR& p) { p.groups[0].steps = {1, 0}; }); }},
      // ---- SSA discipline -------------------------------------------------
      {"plan.step.out.alias",
       [] {
         return CorruptChain([](PlanIR& p) {
           PlanValue v = Val4();
           v.alias_of = 1;
           p.values.push_back(v);
           p.steps[1].out = 3;  // writes into the view
         });
       }},
      {"plan.value.multidef",
       [] { return CorruptChain([](PlanIR& p) { p.steps[1].out = 1; }); }},
      {"plan.value.undef",
       [] {
         return CorruptChain([](PlanIR& p) {
           p.values.push_back(Val4());
           p.steps[1].in0 = 3;  // reads a value no step defines
         });
       }},
      {"plan.value.unused",
       [] {
         return CorruptChain([](PlanIR& p) {
           p.values.push_back(Val4(2));
           p.buffers.push_back(PlanBuffer{4, true});
         });
       }},
      // ---- Races ----------------------------------------------------------
      {"plan.race.use_before_def",
       [] {
         PlanIR plan;
         plan.values = {Val4(), Val4(0), Val4(1, /*head=*/true)};
         plan.groups.emplace_back();
         plan.buffers = {PlanBuffer{4, true}, PlanBuffer{4, false}};
         plan.steps = {LinearStep(1, 2), LinearStep(0, 1)};  // read before def
         plan.head_values = {2};
         IndexGroups(plan);
         return VerifyPlan(plan);
       }},
      {"plan.race.cross_branch", [] { return VerifyTestdataPlan("plan_cross_branch_race.plan"); }},
      // ---- Kernel shape signatures ---------------------------------------
      {"plan.shape.conv",
       [] {
         return CorruptChain([](PlanIR& p) { p.steps[1].kind = PlanOp::kConv; });
       }},
      {"plan.shape.skip",
       [] {
         // A correct 1x1 conv whose residual skip input has the wrong shape.
         PlanIR plan;
         PlanValue in;
         in.shape = Shape{1, 2, 2};
         PlanValue out;
         out.shape = Shape{1, 2, 2};
         out.buffer = 0;
         out.is_head = true;
         plan.values = {in, out, Val4(1)};
         plan.groups.emplace_back();
         plan.buffers = {PlanBuffer{4, false}, PlanBuffer{4, true}};
         PlanStep conv;
         conv.kind = PlanOp::kConv;
         conv.in0 = 0;
         conv.out = 1;
         conv.skip = 2;  // shape (4,) != output (1,2,2)
         conv.weight_shape = Shape{1, 1, 1, 1};
         conv.stride = 1;
         conv.padding = 0;
         plan.steps = {conv};
         plan.head_values = {1};
         IndexGroups(plan);
         return VerifyPlan(plan);
       }},
      {"plan.shape.linear",
       [] { return CorruptChain([](PlanIR& p) { p.steps[0].weight_shape = Shape{5, 4}; }); }},
      {"plan.shape.pool",
       [] { return CorruptChain([](PlanIR& p) { p.steps[1].kind = PlanOp::kMaxPool; }); }},
      {"plan.shape.gap",
       [] { return CorruptChain([](PlanIR& p) { p.steps[1].kind = PlanOp::kGlobalAvgPool; }); }},
      {"plan.shape.meanpool",
       [] { return CorruptChain([](PlanIR& p) { p.steps[1].kind = PlanOp::kMeanPoolTokens; }); }},
      {"plan.shape.resize",
       [] { return CorruptChain([](PlanIR& p) { p.steps[1].kind = PlanOp::kBilinearResize; }); }},
      {"plan.shape.tokresize",
       [] { return CorruptChain([](PlanIR& p) { p.steps[1].kind = PlanOp::kTokenResize; }); }},
      // ---- Solver annotations --------------------------------------------
      {"plan.solver.kind",
       [] {
         return CorruptChain([](PlanIR& p) {
           p.steps[1].kind = PlanOp::kGlobalAvgPool;
           p.steps[1].solver = "gemm.ref";  // no tunable kernel for gap
         });
       }},
      {"plan.solver.dtype",
       [] {
         PlanIR plan = PoolPlan(2, 2);
         plan.steps[0].solver = "pool.generic";
         plan.steps[0].dtype = kernels::DType::kInt8;  // int8 is GEMM-only
         return VerifyPlan(plan);
       }},
      {"plan.solver.unknown",
       [] { return CorruptChain([](PlanIR& p) { p.steps[0].solver = "gemm.nope"; }); }},
      {"plan.solver.applicable",
       [] {
         PlanIR plan = PoolPlan(3, 1);
         plan.steps[0].solver = "pool.2x2s2";  // registered, but 2x2-only
         return VerifyPlan(plan);
       }},
      // ---- Buffer assignment ---------------------------------------------
      {"plan.buffer.module",
       [] { return CorruptChain([](PlanIR& p) { p.values[1].from_module = true; }); }},
      {"plan.buffer.unassigned",
       [] { return CorruptChain([](PlanIR& p) { p.values[1].buffer = -1; }); }},
      {"plan.buffer.size",
       [] { return CorruptChain([](PlanIR& p) { p.buffers[0].elems_per_sample = 2; }); }},
      {"plan.head.flag",
       [] { return CorruptChain([](PlanIR& p) { p.values[2].is_head = false; }); }},
      {"plan.buffer.head",
       [] { return CorruptChain([](PlanIR& p) { p.buffers[1].reusable = true; }); }},
      {"plan.buffer.overlap", [] { return VerifyTestdataPlan("plan_buffer_overlap.plan"); }},
      // ---- Text format ----------------------------------------------------
      {"plan.io.open",
       [] { return std::move(ParsePlanTextFile(Testdata("no_such_plan.plan")).diagnostics); }},
      {"plan.io.header",
       [] {
         std::istringstream empty("");
         return std::move(ParsePlanText(empty).diagnostics);
       }},
      {"plan.io.parse",
       [] {
         std::istringstream bad("gmorph-plan v1\nvalue banana\n");
         return std::move(ParsePlanText(bad).diagnostics);
       }},
      // ---- Dtype dataflow -------------------------------------------------
      {"plan.dtype.mismatch",
       [] {
         PlanIR plan = CleanChainPlan();
         plan.values[1].dtype = kernels::DType::kInt8;
         return AnalyzePlanDtypes(plan);
       }},
      {"plan.dtype.input",
       [] {
         PlanIR plan = CleanChainPlan();
         plan.steps.erase(plan.steps.begin());  // v1 loses its producer
         plan.groups[0].steps = {0};
         plan.values[1].dtype = kernels::DType::kInt8;
         return AnalyzePlanDtypes(plan);
       }},
      {"plan.dtype.step", [] { return RunFullPlanPasses("plan_dtype_int8_pool.plan"); }},
      {"plan.dtype.alias",
       [] {
         PlanIR plan = CleanChainPlan();
         PlanValue v = Val4();
         v.alias_of = 1;
         v.dtype = kernels::DType::kInt8;
         plan.values.push_back(v);
         return AnalyzePlanDtypes(plan);
       }},
      {"plan.dtype.head",
       [] {
         PlanIR plan = CleanChainPlan();
         plan.values[2].dtype = kernels::DType::kInt8;
         return AnalyzePlanDtypes(plan);
       }},
      {"plan.dtype.buffer",
       [] {
         PlanIR plan = CleanChainPlan();
         plan.values[1].dtype = kernels::DType::kInt8;
         plan.values.push_back(Val4(0));  // f32 resident in the same slot
         return AnalyzePlanDtypes(plan);
       }},
      // ---- Memory certification ------------------------------------------
      {"plan.mem.arena", [] { return RunFullPlanPasses("plan_mem_arena_short.plan"); }},
      {"plan.mem.buffer",
       [] {
         PlanIR plan = CleanChainPlan();
         plan.buffers.push_back(PlanBuffer{4, true});
         return AnalyzePlanMemory(plan);
       }},
      {"plan.mem.waste",
       [] {
         PlanIR plan = CleanChainPlan();
         MemAnalysisOptions options;
         options.waste_factor = 1.0;
         options.slack_bytes = 0;
         plan.buffers[0].elems_per_sample = 4096;
         return AnalyzePlanMemory(plan, options);
       }},
      {"plan.mem.summary", [] { return AnalyzePlanMemory(CleanChainPlan()); }},
  };
}

// ---------------------------------------------------------------------------
// The detector itself
// ---------------------------------------------------------------------------

TEST(RuleCoverageTest, EverySeededDefectFiresItsTargetRule) {
  std::set<std::string> fired;
  for (const auto& scenarios : {GraphScenarios(), PlanScenarios()}) {
    for (const Scenario& scenario : scenarios) {
      const DiagnosticList diags = scenario.run();
      EXPECT_TRUE(diags.HasRule(scenario.rule))
          << "seeded defect for " << scenario.rule << " fired instead:\n"
          << diags.ToString();
      for (const Diagnostic& d : diags.items()) {
        fired.insert(d.rule_id);
      }
    }
  }

  // No dead rules: everything registered under plan./graph. was produced by
  // at least one scenario above.
  std::vector<std::string> dead;
  for (const RuleInfo& rule : AllRules()) {
    const std::string id = rule.id;
    if ((id.rfind("plan.", 0) == 0 || id.rfind("graph.", 0) == 0) && fired.count(id) == 0) {
      dead.push_back(id);
    }
  }
  EXPECT_TRUE(dead.empty()) << "registered rules no scenario can fire: " << [&] {
    std::string joined;
    for (const std::string& id : dead) {
      joined += id + " ";
    }
    return joined;
  }();

  // And the converse: nothing fired that the registry doesn't know.
  for (const std::string& id : fired) {
    EXPECT_NE(FindRule(id), nullptr) << "unregistered rule id fired: " << id;
  }
}

}  // namespace
}  // namespace gmorph
