// Tests for the accuracy estimator (distillation fine-tuning) and the
// runtime engines.
#include <gtest/gtest.h>

#include "src/core/finetune.h"
#include "src/core/latency.h"
#include "src/core/model_parser.h"
#include "src/core/mutation.h"
#include "src/data/synthetic.h"
#include "src/data/teacher.h"
#include "src/models/zoo.h"
#include "src/runtime/engine.h"
#include "src/runtime/fused_engine.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

struct Fixture {
  VisionDatasetPair data;
  std::unique_ptr<TaskModel> teacher_a;
  std::unique_ptr<TaskModel> teacher_b;
  std::vector<Tensor> teacher_logits;
  std::vector<double> teacher_scores;
};

Fixture MakeFixture(Rng& rng, int64_t base_width = 4) {
  Fixture f;
  std::vector<VisionTaskSpec> tasks(2);
  tasks[0].num_classes = 3;
  tasks[1].num_classes = 2;
  VisionDataOptions data_opts;
  f.data = GenerateVisionData(64, 48, tasks, data_opts, rng);

  VisionModelOptions opts;
  opts.base_width = base_width;
  opts.classes = 3;
  f.teacher_a = std::make_unique<TaskModel>(MakeVgg11(opts), rng);
  opts.classes = 2;
  f.teacher_b = std::make_unique<TaskModel>(MakeVgg11(opts), rng);
  TeacherTrainOptions train_opts;
  train_opts.epochs = 3;
  TrainTeacher(*f.teacher_a, f.data.train, f.data.test, 0, train_opts);
  TrainTeacher(*f.teacher_b, f.data.train, f.data.test, 1, train_opts);
  f.teacher_logits = {PredictAll(*f.teacher_a, f.data.train),
                      PredictAll(*f.teacher_b, f.data.train)};
  f.teacher_scores = {EvaluateTeacher(*f.teacher_a, f.data.test, 0),
                      EvaluateTeacher(*f.teacher_b, f.data.test, 1)};
  return f;
}

TEST(FinetuneTest, UnmutatedModelAlreadyMeetsTarget) {
  Rng rng(1);
  Fixture f = MakeFixture(rng);
  AbsGraph g = ParseTaskModels({f.teacher_a.get(), f.teacher_b.get()});
  MultiTaskModel model(g, rng);
  FinetuneOptions opts;
  opts.max_epochs = 2;
  opts.eval_interval = 1;
  opts.target_drop = 0.02;
  FinetuneResult r =
      DistillFinetune(model, f.teacher_logits, f.data.train, f.data.test, f.teacher_scores, opts);
  // The original graph carries teacher weights: the first evaluation passes.
  EXPECT_TRUE(r.met_target);
  EXPECT_LE(r.epochs_run, 1);
}

TEST(FinetuneTest, RecoversAccuracyAfterMutation) {
  Rng rng(2);
  Fixture f = MakeFixture(rng);
  AbsGraph g = ParseTaskModels({f.teacher_a.get(), f.teacher_b.get()});
  // Share the first conv: task 1's second block reuses task 0's second-block
  // input (paper Fig. 5, panel 2).
  const int second0 = g.node(g.node(g.root()).children[0]).children[0];
  const int second1 = g.node(g.node(g.root()).children[1]).children[0];
  ASSERT_TRUE(ApplyMutation(g, {second0, second1}));
  MultiTaskModel model(g, rng);
  FinetuneOptions opts;
  opts.max_epochs = 24;
  opts.eval_interval = 2;
  opts.target_drop = 0.05;
  FinetuneResult r =
      DistillFinetune(model, f.teacher_logits, f.data.train, f.data.test, f.teacher_scores, opts);
  EXPECT_TRUE(r.met_target) << "final drop " << r.max_drop;
  EXPECT_EQ(r.task_scores.size(), 2u);
}

TEST(FinetuneTest, PredictiveTerminationStopsDoomedCandidate) {
  Rng rng(3);
  Fixture f = MakeFixture(rng);
  AbsGraph g = ParseTaskModels({f.teacher_a.get(), f.teacher_b.get()});
  MultiTaskModel model(g, rng);
  FinetuneOptions opts;
  opts.max_epochs = 40;
  opts.eval_interval = 1;
  opts.lr = 0.0f;           // model cannot improve
  opts.target_drop = -2.0;  // unreachable target (scores are <= 1)
  opts.predictive_termination = true;
  opts.early_stop_on_target = true;
  FinetuneResult r =
      DistillFinetune(model, f.teacher_logits, f.data.train, f.data.test, f.teacher_scores, opts);
  EXPECT_FALSE(r.met_target);
  EXPECT_TRUE(r.terminated_early);
  EXPECT_LT(r.epochs_run, opts.max_epochs);
}

TEST(FinetuneTest, PredictAllTasksConcatenatesBatches) {
  Rng rng(4);
  Fixture f = MakeFixture(rng);
  AbsGraph g = ParseTaskModels({f.teacher_a.get(), f.teacher_b.get()});
  MultiTaskModel model(g, rng);
  std::vector<Tensor> big = PredictAllTasks(model, f.data.test, /*batch_size=*/64);
  std::vector<Tensor> small = PredictAllTasks(model, f.data.test, /*batch_size=*/7);
  ASSERT_EQ(big.size(), small.size());
  for (size_t t = 0; t < big.size(); ++t) {
    EXPECT_LT(testing::MaxDiff(big[t], small[t]), 1e-5f);
  }
}

TEST(LatencyTest, PositiveAndScalesWithModel) {
  Rng rng(5);
  VisionModelOptions small;
  small.base_width = 4;
  VisionModelOptions large;
  large.base_width = 16;
  AbsGraph g_small = ParseModelSpecs({MakeVgg11(small)});
  AbsGraph g_large = ParseModelSpecs({MakeVgg16(large)});
  MultiTaskModel m_small(g_small, rng);
  MultiTaskModel m_large(g_large, rng);
  LatencyOptions opts;
  opts.measured_runs = 3;
  const double lat_small = MeasureLatencyMs(m_small, opts);
  const double lat_large = MeasureLatencyMs(m_large, opts);
  EXPECT_GT(lat_small, 0.0);
  EXPECT_GT(lat_large, lat_small);
}

TEST(EngineTest, FusedMatchesEagerAfterTraining) {
  Rng rng(6);
  Fixture f = MakeFixture(rng);
  // Use a ResNet so BN folding is exercised with non-trivial running stats.
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 3;
  TaskModel resnet(MakeResNet18(opts), rng);
  TeacherTrainOptions topts;
  topts.epochs = 2;
  TrainTeacher(resnet, f.data.train, f.data.test, 0, topts);

  AbsGraph g = ParseTaskModels({&resnet, f.teacher_b.get()});
  MultiTaskModel model(g, rng);

  auto eager = MakeEngine(EngineKind::kEager, &model);
  auto fused = MakeEngine(EngineKind::kFused, &model);
  Tensor x = Tensor::RandomGaussian(Shape{2, 3, 32, 32}, rng);
  std::vector<Tensor> eager_out = eager->Run(x);
  std::vector<Tensor> fused_out = fused->Run(x);
  ASSERT_EQ(eager_out.size(), fused_out.size());
  for (size_t t = 0; t < eager_out.size(); ++t) {
    EXPECT_LT(testing::MaxDiff(eager_out[t], fused_out[t]), 1e-3f);
  }
}

TEST(EngineTest, FusedPlanCountsConvsAndIdentities) {
  Rng rng(7);
  VisionModelOptions opts;
  opts.base_width = 4;
  opts.classes = 2;
  AbsGraph g = ParseModelSpecs({MakeVgg11(opts)});
  MultiTaskModel model(g, rng);
  FusedEngine fused(&model);
  // All 8 VGG-11 conv layers are fusible.
  EXPECT_EQ(fused.num_fused_convs(), 8);
  EXPECT_EQ(fused.num_eliminated(), 0);
}

TEST(EngineTest, FusedNotSlowerThanEager) {
  Rng rng(8);
  VisionModelOptions opts;
  opts.base_width = 8;
  opts.classes = 4;
  AbsGraph g = ParseModelSpecs({MakeVgg13(opts)});
  MultiTaskModel model(g, rng);
  auto eager = MakeEngine(EngineKind::kEager, &model);
  auto fused = MakeEngine(EngineKind::kFused, &model);
  const Shape in = g.node(g.root()).output_shape;
  const double lat_eager = MeasureEngineLatencyMs(*eager, in, 4, 1, 5);
  const double lat_fused = MeasureEngineLatencyMs(*fused, in, 4, 1, 5);
  EXPECT_LT(lat_fused, lat_eager * 1.15);  // allow timer noise
}

TEST(EngineTest, TransformerFallbackPath) {
  Rng rng(9);
  TransformerModelOptions vit = ViTBaseOptions();
  vit.classes = 3;
  AbsGraph g = ParseModelSpecs({MakeViT("vit", vit)});
  MultiTaskModel model(g, rng);
  auto eager = MakeEngine(EngineKind::kEager, &model);
  auto fused = MakeEngine(EngineKind::kFused, &model);
  Tensor x = Tensor::RandomGaussian(Shape{1, 3, 32, 32}, rng);
  EXPECT_LT(testing::MaxDiff(eager->Run(x)[0], fused->Run(x)[0]), 1e-4f);
}

}  // namespace
}  // namespace gmorph
