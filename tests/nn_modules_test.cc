#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/nn/activations.h"
#include "src/nn/blocks.h"
#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/nn/loss.h"
#include "src/nn/norm.h"
#include "src/nn/optimizer.h"
#include "src/nn/rescale.h"
#include "src/nn/sequential.h"
#include "src/tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace gmorph {
namespace {

using testing::MaxDiff;

TEST(ModuleTest, CloneIsDeep) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  std::unique_ptr<Module> clone = layer.Clone();
  // Mutating the original must not affect the clone.
  layer.Parameters()[0]->value.Fill(0.0f);
  float max_abs = 0.0f;
  for (Parameter* p : clone->Parameters()) {
    for (int64_t i = 0; i < p->value.size(); ++i) {
      max_abs = std::max(max_abs, std::fabs(p->value.at(i)));
    }
  }
  EXPECT_GT(max_abs, 0.0f);
}

TEST(ModuleTest, ExportImportRoundTrip) {
  Rng rng(2);
  Conv2d a(2, 3, 3, 1, 1, rng);
  Conv2d b(2, 3, 3, 1, 1, rng);
  b.ImportParameters(a.ExportParameters());
  Tensor x = Tensor::RandomGaussian(Shape{1, 2, 4, 4}, rng);
  EXPECT_LT(MaxDiff(a.Forward(x, false), b.Forward(x, false)), 1e-6f);
}

TEST(ModuleTest, ImportRejectsWrongShapes) {
  Rng rng(3);
  Linear a(4, 3, rng);
  Linear b(4, 5, rng);
  EXPECT_THROW(b.ImportParameters(a.ExportParameters()), CheckError);
}

TEST(ModuleTest, ZeroGradClearsAccumulation) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::RandomGaussian(Shape{2, 3}, rng);
  Tensor y = layer.Forward(x, true);
  layer.Backward(Tensor::Full(y.shape(), 1.0f));
  layer.ZeroGrad();
  for (Parameter* p : layer.Parameters()) {
    EXPECT_FLOAT_EQ(MaxAbs(p->grad), 0.0f);
  }
}

TEST(BatchNormTest, TrainingNormalizesBatch) {
  Rng rng(5);
  BatchNorm2d bn(4);
  Tensor x = Tensor::RandomGaussian(Shape{8, 4, 3, 3}, rng, 3.0f);
  Tensor y = bn.Forward(x, /*training=*/true);
  // Per channel: approx zero mean, unit variance.
  const int64_t spatial = 9;
  const int64_t n = 8;
  for (int64_t c = 0; c < 4; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t s = 0; s < spatial; ++s) {
        const float v = y.at(((i * 4 + c) * spatial) + s);
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    const double mean = sum / (n * spatial);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / (n * spatial) - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(6);
  BatchNorm2d bn(2);
  Tensor x = Tensor::RandomGaussian(Shape{16, 2, 4, 4}, rng, 2.0f);
  for (int i = 0; i < 50; ++i) {
    bn.Forward(x, true);  // converge running stats to the batch stats
  }
  Tensor train_out = bn.Forward(x, true);
  Tensor eval_out = bn.Forward(x, false);
  EXPECT_LT(MaxDiff(train_out, eval_out), 5e-2f);
}

TEST(BatchNormTest, BackwardRequiresTrainingForward) {
  BatchNorm2d bn(2);
  Tensor x = Tensor::Zeros(Shape{1, 2, 2, 2});
  bn.Forward(x, /*training=*/false);
  EXPECT_THROW(bn.Backward(x), CheckError);
}

TEST(RescaleTest, IdentityDetection) {
  Rng rng(7);
  Rescale same(Shape{4, 8, 8}, Shape{4, 8, 8}, rng);
  EXPECT_TRUE(same.IsIdentity());
  EXPECT_EQ(same.ParamCount(), 0);
  Rescale spatial(Shape{4, 8, 8}, Shape{4, 4, 4}, rng);
  EXPECT_FALSE(spatial.IsIdentity());
  EXPECT_EQ(spatial.ParamCount(), 0);  // no channel change -> no parameters
  Rescale channel(Shape{4, 8, 8}, Shape{6, 8, 8}, rng);
  EXPECT_FALSE(channel.IsIdentity());
  EXPECT_GT(channel.ParamCount(), 0);
}

TEST(RescaleTest, OutputShapes) {
  Rng rng(8);
  Rescale r(Shape{2, 6, 6}, Shape{5, 3, 9}, rng);
  Tensor x = Tensor::RandomGaussian(Shape{2, 2, 6, 6}, rng);
  Tensor y = r.Forward(x, false);
  EXPECT_EQ(y.shape().dims(), (std::vector<int64_t>{2, 5, 3, 9}));
  Rescale tokens(Shape{4, 3}, Shape{7, 6}, rng);
  Tensor tx = Tensor::RandomGaussian(Shape{3, 4, 3}, rng);
  EXPECT_EQ(tokens.Forward(tx, false).shape().dims(), (std::vector<int64_t>{3, 7, 6}));
}

TEST(RescaleTest, RankMismatchRejected) {
  Rng rng(9);
  EXPECT_THROW(Rescale(Shape{4, 8, 8}, Shape{4, 8}, rng), CheckError);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||Wx - t||^2-ish via L1 on a fixed mapping.
  Rng rng(10);
  Linear layer(4, 4, rng);
  Adam opt(layer.Parameters(), 5e-2f);
  Tensor x = Tensor::RandomGaussian(Shape{16, 4}, rng);
  Linear target_layer(4, 4, rng);
  Tensor target = target_layer.Forward(x, false);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 300; ++step) {
    Tensor y = layer.Forward(x, true);
    Tensor grad;
    const float loss = L1Loss(y, target, grad);
    if (step == 0) {
      first_loss = loss;
    }
    last_loss = loss;
    layer.Backward(grad);
    opt.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.2f);
}

TEST(AdamTest, StepZeroesGradients) {
  Rng rng(11);
  Linear layer(3, 3, rng);
  Adam opt(layer.Parameters(), 1e-3f);
  Tensor x = Tensor::RandomGaussian(Shape{2, 3}, rng);
  Tensor y = layer.Forward(x, true);
  layer.Backward(Tensor::Full(y.shape(), 1.0f));
  opt.Step();
  for (Parameter* p : layer.Parameters()) {
    EXPECT_FLOAT_EQ(MaxAbs(p->grad), 0.0f);
  }
}

TEST(LossTest, L1LossValueAndGrad) {
  Tensor pred = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor target = Tensor::FromVector(Shape{2, 2}, {2, 2, 1, 4});
  Tensor grad;
  const float loss = L1Loss(pred, target, grad);
  EXPECT_NEAR(loss, (1 + 0 + 2 + 0) / 4.0f, 1e-6f);
  EXPECT_FLOAT_EQ(grad.at(0), -0.25f);
  EXPECT_FLOAT_EQ(grad.at(1), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(2), 0.25f);
}

TEST(LossTest, CrossEntropyGradMatchesNumeric) {
  Rng rng(12);
  Tensor logits = Tensor::RandomGaussian(Shape{3, 4}, rng);
  const std::vector<int> labels = {1, 0, 3};
  Tensor grad;
  CrossEntropyLoss(logits, labels, grad);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits.Clone();
    lp.at(i) += eps;
    Tensor lm = logits.Clone();
    lm.at(i) -= eps;
    Tensor dummy;
    const float up = CrossEntropyLoss(lp, labels, dummy);
    const float dn = CrossEntropyLoss(lm, labels, dummy);
    EXPECT_NEAR(grad.at(i), (up - dn) / (2 * eps), 1e-3f);
  }
}

TEST(LossTest, BceGradMatchesNumeric) {
  Rng rng(13);
  Tensor logits = Tensor::RandomGaussian(Shape{2, 3}, rng);
  Tensor targets = Tensor::FromVector(Shape{2, 3}, {1, 0, 1, 0, 0, 1});
  Tensor grad;
  BinaryCrossEntropyLoss(logits, targets, grad);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits.Clone();
    lp.at(i) += eps;
    Tensor lm = logits.Clone();
    lm.at(i) -= eps;
    Tensor dummy;
    const float up = BinaryCrossEntropyLoss(lp, targets, dummy);
    const float dn = BinaryCrossEntropyLoss(lm, targets, dummy);
    EXPECT_NEAR(grad.at(i), (up - dn) / (2 * eps), 1e-3f);
  }
}

TEST(MetricTest, Accuracy) {
  Tensor logits = Tensor::FromVector(Shape{3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
}

TEST(MetricTest, PerfectMapIsOne) {
  Tensor logits = Tensor::FromVector(Shape{3, 2}, {5, -5, 4, -4, -3, 3});
  Tensor targets = Tensor::FromVector(Shape{3, 2}, {1, 0, 1, 0, 0, 1});
  EXPECT_NEAR(MeanAveragePrecision(logits, targets), 1.0, 1e-9);
}

TEST(MetricTest, RandomMapBelowPerfect) {
  Tensor logits = Tensor::FromVector(Shape{4, 1}, {0.1f, 0.9f, 0.2f, 0.8f});
  Tensor targets = Tensor::FromVector(Shape{4, 1}, {1, 0, 1, 0});
  const double ap = MeanAveragePrecision(logits, targets);
  EXPECT_LT(ap, 1.0);
  EXPECT_GT(ap, 0.0);
}

TEST(MetricTest, MatthewsPerfectAndInverted) {
  Tensor logits = Tensor::FromVector(Shape{4, 2}, {5, -5, -5, 5, 5, -5, -5, 5});
  EXPECT_NEAR(MatthewsCorrelation(logits, {0, 1, 0, 1}), 1.0, 1e-9);
  EXPECT_NEAR(MatthewsCorrelation(logits, {1, 0, 1, 0}), -1.0, 1e-9);
}

TEST(MetricTest, MatthewsDegenerateIsZero) {
  Tensor logits = Tensor::FromVector(Shape{2, 2}, {5, -5, 5, -5});
  EXPECT_DOUBLE_EQ(MatthewsCorrelation(logits, {0, 0}), 0.0);
}

TEST(SequentialTest, ChainsForwardAndParams) {
  Rng rng(14);
  Sequential seq;
  seq.Append(std::make_unique<Linear>(4, 8, rng));
  seq.Append(std::make_unique<ReLU>());
  seq.Append(std::make_unique<Linear>(8, 2, rng));
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.Parameters().size(), 4u);
  EXPECT_EQ(seq.ParamCount(), 4 * 8 + 8 + 8 * 2 + 2);
  Tensor x = Tensor::RandomGaussian(Shape{3, 4}, rng);
  EXPECT_EQ(seq.Forward(x, false).shape().dims(), (std::vector<int64_t>{3, 2}));
}

}  // namespace
}  // namespace gmorph
