// Profiler stack: perf-counter groups with their graceful-degradation
// contract, the machine-ceiling probe artifact, the roofline attribution
// report, the /proc-backed process-memory gauges, and the machine.* linter.
//
// Counter availability is environment-dependent (containers and CI deny
// perf_event_open), so every test here either forces the unavailable path
// (bogus leader event, GMORPH_NO_PERF) or branches on PerfCountersAvailable()
// — the suite must pass identically on both kinds of machine.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/analysis/machine_verifier.h"
#include "src/kernels/machine.h"
#include "src/kernels/tune_db.h"
#include "src/obs/metrics.h"
#include "src/obs/perf_counters.h"
#include "src/obs/proc_stats.h"
#include "src/runtime/roofline.h"

namespace gmorph {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PerfCounterTest, CountsAccumulateAndDeriveRates) {
  obs::PerfCounts a;
  a.cycles = 1000;
  a.instructions = 2000;
  a.llc_loads = 100;
  a.llc_misses = 25;
  a.branch_misses = 10;
  a.samples = 1;
  a.valid = true;
  obs::PerfCounts b = a;
  a += b;
  EXPECT_EQ(a.cycles, 2000);
  EXPECT_EQ(a.instructions, 4000);
  EXPECT_EQ(a.samples, 2);
  EXPECT_TRUE(a.valid);
  EXPECT_DOUBLE_EQ(a.Ipc(), 2.0);
  EXPECT_DOUBLE_EQ(a.LlcMissRate(), 0.25);

  // Unmeasured counters never divide by zero.
  obs::PerfCounts empty;
  EXPECT_DOUBLE_EQ(empty.Ipc(), 0.0);
  EXPECT_DOUBLE_EQ(empty.LlcMissRate(), 0.0);
}

TEST(PerfCounterTest, BogusLeaderEventDegradesGracefully) {
  // 0xffffffff is not a perf event type on any kernel: the ENOENT path, the
  // same shape a PMU-less machine hits, exercised deterministically.
  obs::PerfCounterGroup group(0xffffffffu, 0);
  EXPECT_FALSE(group.available());
  EXPECT_FALSE(group.error().empty());
  EXPECT_NE(group.error().find("perf_event_open"), std::string::npos);
  obs::PerfCounts counts;
  EXPECT_FALSE(group.Read(&counts));
  EXPECT_FALSE(counts.valid);
}

TEST(PerfCounterTest, NoPerfEnvForcesUnavailable) {
  ::setenv("GMORPH_NO_PERF", "1", 1);
  obs::PerfCounterGroup group;
  ::unsetenv("GMORPH_NO_PERF");
  EXPECT_FALSE(group.available());
  EXPECT_NE(group.error().find("GMORPH_NO_PERF"), std::string::npos);
}

TEST(PerfCounterTest, StepScopeIsInertWhenDisabled) {
  obs::DisableStepCounters();
  ASSERT_FALSE(obs::StepCountersEnabled());
  obs::PerfCounts acc;
  {
    obs::PerfStepScope scope(&acc);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) {
      sink = sink + i;
    }
  }
  EXPECT_EQ(acc.samples, 0);
  EXPECT_FALSE(acc.valid);
}

TEST(PerfCounterTest, StepScopeAccumulatesIffCountersAvailable) {
  obs::EnableStepCounters();
  obs::PerfCounts acc;
  {
    obs::PerfStepScope scope(&acc);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
      sink = sink + i;
    }
  }
  obs::DisableStepCounters();
  if (obs::PerfCountersAvailable()) {
    EXPECT_EQ(acc.samples, 1);
    EXPECT_TRUE(acc.valid);
    EXPECT_GT(acc.cycles, 0);
    EXPECT_GT(acc.instructions, 0);
  } else {
    // The whole point of the fallback: enabled counting on a denied machine
    // records nothing but never fails.
    EXPECT_EQ(acc.samples, 0);
    EXPECT_FALSE(acc.valid);
  }
}

TEST(MachineCeilingsTest, SaveLoadRoundTripIsTrusted) {
  kernels::MachineCeilings ceilings;
  ceilings.peak_gflops = 48.25;
  ceilings.triad_gbps = 12.5;
  ceilings.threads = 3;
  const std::string path = TempPath("roundtrip.machine");
  ASSERT_TRUE(kernels::SaveMachineCeilings(path, ceilings));

  const kernels::MachineLoadResult loaded = kernels::LoadMachineCeilings(path);
  EXPECT_TRUE(loaded.ok);
  EXPECT_FALSE(loaded.fingerprint_mismatch);
  EXPECT_NEAR(loaded.ceilings.peak_gflops, 48.25, 1e-3);
  EXPECT_NEAR(loaded.ceilings.triad_gbps, 12.5, 1e-3);
  EXPECT_EQ(loaded.ceilings.threads, 3);
  EXPECT_NEAR(loaded.ceilings.RidgeIntensity(), 48.25 / 12.5, 1e-6);
}

TEST(MachineCeilingsTest, ForeignFingerprintIsNotTrusted) {
  const std::string path = TempPath("foreign.machine");
  {
    std::ofstream out(path);
    out << kernels::kMachineHeader << "\n"
        << "fingerprint 0123456789abcdef\n"  // not this build's fingerprint
        << "threads 2\npeak_gflops 10\ntriad_gbps 5\n";
  }
  const kernels::MachineLoadResult loaded = kernels::LoadMachineCeilings(path);
  EXPECT_TRUE(loaded.ok);
  EXPECT_TRUE(loaded.fingerprint_mismatch);
}

TEST(MachineCeilingsTest, MissingFileIsJustNotOk) {
  const kernels::MachineLoadResult loaded =
      kernels::LoadMachineCeilings(TempPath("nonexistent.machine"));
  EXPECT_FALSE(loaded.ok);
}

TEST(MachineCeilingsTest, ParseEntryLineValidatesKeysAndValues) {
  std::string key, error;
  double value = 0.0;
  EXPECT_TRUE(kernels::ParseMachineEntryLine("peak_gflops 38.5", &key, &value, &error));
  EXPECT_EQ(key, "peak_gflops");
  EXPECT_DOUBLE_EQ(value, 38.5);
  EXPECT_FALSE(kernels::ParseMachineEntryLine("bogus_key 1.0", &key, &value, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(kernels::ParseMachineEntryLine("threads", &key, &value, &error));
  EXPECT_FALSE(kernels::ParseMachineEntryLine("threads many", &key, &value, &error));
}

TEST(MachineCeilingsTest, ResolveMachinePathPrefersOverride) {
  EXPECT_EQ(kernels::ResolveMachinePath("/tmp/explicit.machine"), "/tmp/explicit.machine");
  // Default resolution lands the artifact next to the tuning DB.
  const std::string resolved = kernels::ResolveMachinePath();
  EXPECT_NE(resolved.find("gmorph.machine"), std::string::npos);
}

TEST(MachineVerifierTest, CorruptArtifactFiresMachineRules) {
  const std::string path = TempPath("corrupt.machine");
  {
    std::ofstream out(path);
    out << kernels::kMachineHeader << "\n"
        << "fingerprint zz\n"          // malformed -> machine.fingerprint error
        << "threads -3\n"              // non-positive -> machine.value
        << "bogus 1.0\n"               // unknown key -> machine.entry
        << "threads 2\n";              // repeated key -> machine.entry
    // peak_gflops / triad_gbps absent -> machine.missing (twice)
  }
  const DiagnosticList diags = VerifyMachineFile(path);
  int fingerprint = 0, value = 0, entry = 0, missing = 0;
  for (const Diagnostic& d : diags.items()) {
    if (d.rule_id == "machine.fingerprint") ++fingerprint;
    if (d.rule_id == "machine.value") ++value;
    if (d.rule_id == "machine.entry") ++entry;
    if (d.rule_id == "machine.missing") ++missing;
  }
  EXPECT_EQ(fingerprint, 1);
  EXPECT_EQ(value, 1);
  EXPECT_EQ(entry, 2);
  EXPECT_EQ(missing, 2);
  EXPECT_FALSE(diags.ok());
}

TEST(MachineVerifierTest, SavedArtifactLintsClean) {
  kernels::MachineCeilings ceilings;
  ceilings.peak_gflops = 40.0;
  ceilings.triad_gbps = 10.0;
  ceilings.threads = 2;
  const std::string path = TempPath("clean.machine");
  ASSERT_TRUE(kernels::SaveMachineCeilings(path, ceilings));
  const DiagnosticList diags = VerifyMachineFile(path);
  EXPECT_TRUE(diags.ok()) << diags.ToString();
  EXPECT_TRUE(diags.empty()) << diags.ToString();
}

FusedEngine::StepProfile MakeStep(const char* label, int node, int64_t calls, double total_ms,
                                  double flops, double bytes) {
  FusedEngine::StepProfile p;
  p.label = label;
  p.node = node;
  p.calls = calls;
  p.total_ms = total_ms;
  p.flops = flops;
  p.bytes = bytes;
  return p;
}

kernels::MachineCeilings TestCeilings() {
  kernels::MachineCeilings c;
  c.peak_gflops = 100.0;  // ridge at 10 flop/B
  c.triad_gbps = 10.0;
  c.threads = 1;
  return c;
}

TEST(RooflineReportTest, ClassifiesStepsAgainstTheRidge) {
  // intensity 100 flop/B >> ridge 10 -> compute; 1 flop/B << 10 -> memory;
  // no flops -> opaque; no calls -> idle.
  const std::vector<FusedEngine::StepProfile> profile = {
      MakeStep("dense", 0, 10, 10.0, 1e8, 1e6),
      MakeStep("streamy", 1, 10, 10.0, 1e6, 1e6),
      MakeStep("module", 2, 10, 5.0, 0.0, 0.0),
      MakeStep("never", 3, 0, 0.0, 1e6, 1e6),
  };
  const RooflineReport report = BuildRooflineReport(profile, TestCeilings(), 1, 10, 2);
  ASSERT_EQ(report.steps.size(), 4u);
  EXPECT_EQ(report.steps[0].bound, "compute");
  // 1e8 flops / 1ms = 100 GFLOP/s = 100% of the 100 GFLOP/s roof.
  EXPECT_NEAR(report.steps[0].pct_of_roof, 100.0, 1e-6);
  EXPECT_EQ(report.steps[1].bound, "memory");
  // 1e6 bytes / 1ms = 1 GB/s = 10% of the 10 GB/s roof.
  EXPECT_NEAR(report.steps[1].pct_of_roof, 10.0, 1e-6);
  EXPECT_EQ(report.steps[2].bound, "opaque");
  EXPECT_EQ(report.steps[3].bound, "idle");
  EXPECT_NEAR(report.total_ms, 25.0, 1e-9);

  // Hot list: top-2 by total time, ties broken by plan order (stable sort).
  ASSERT_EQ(report.hot.size(), 2u);
  EXPECT_EQ(report.hot[0], 0);
  EXPECT_EQ(report.hot[1], 1);
}

TEST(RooflineReportTest, BatchScalesPerCallWork) {
  const std::vector<FusedEngine::StepProfile> profile = {
      MakeStep("dense", 0, 4, 4.0, 1e6, 1e4),
  };
  const RooflineReport report = BuildRooflineReport(profile, TestCeilings(), 8, 4);
  // Profile flops are per sample; a call processes the whole batch.
  EXPECT_NEAR(report.steps[0].flops_per_call, 8e6, 1e-3);
  EXPECT_NEAR(report.steps[0].bytes_per_call, 8e4, 1e-3);
  EXPECT_NEAR(report.steps[0].ms_per_call, 1.0, 1e-9);
}

TEST(RooflineReportTest, TextAndJsonCarryTheFallbackContract) {
  const std::vector<FusedEngine::StepProfile> profile = {
      MakeStep("conv \"quoted\"", 0, 2, 1.0, 1e6, 1e5),
  };
  const RooflineReport report = BuildRooflineReport(profile, TestCeilings(), 1, 2);
  const std::string text = RooflineReportText(report);
  EXPECT_NE(text.find("roofline: batch=1 runs=2"), std::string::npos);
  EXPECT_NE(text.find("hot steps:"), std::string::npos);
  if (report.counters_available) {
    EXPECT_NE(text.find("counters: available"), std::string::npos);
  } else {
    // The report must still be complete and say why the counter half is zero.
    EXPECT_NE(text.find("counters: unavailable ("), std::string::npos);
  }
  const std::string json = RooflineReportJson(report);
  EXPECT_NE(json.find("\"report\":\"roofline\""), std::string::npos);
  EXPECT_NE(json.find("\"machine\":{"), std::string::npos);
  EXPECT_NE(json.find("\"counters_available\":"), std::string::npos);
  // The label's quote must be escaped, or the JSON is invalid.
  EXPECT_NE(json.find("conv \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("conv \"quoted\""), std::string::npos);
}

TEST(ProcStatsTest, ReadsProcessMemoryFromProc) {
  obs::ProcessMemory mem;
  ASSERT_TRUE(obs::ReadProcessMemory(&mem));
  EXPECT_GT(mem.rss_bytes, 0);
  EXPECT_GE(mem.peak_rss_bytes, mem.rss_bytes);
}

TEST(ProcStatsTest, MetricsSnapshotCarriesRssGauges) {
  const std::string json = obs::MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("proc.rss_bytes"), std::string::npos);
  EXPECT_NE(json.find("proc.peak_rss_bytes"), std::string::npos);
}

}  // namespace
}  // namespace gmorph
